//! The resource consumption graph: reserves connected by taps, rooted at the
//! battery (paper §3.4).
//!
//! All mutation goes through privilege-checked methods taking an [`Actor`]
//! (a thread's label + privileges, or the kernel itself). The graph advances
//! in *batch flow ticks* ([`ResourceGraph::flow_until`]), mirroring the
//! paper's implementation note that tap transfers "are executed in batch
//! periodically to minimize scheduling and context-switch overheads".
//!
//! # Typed resource kinds
//!
//! Every reserve declares a [`ResourceKind`] — energy, network bytes, or
//! SMS messages (the paper's §9 generalisation). Each kind is rooted at its
//! own pool reserve (the battery for energy, created via
//! [`ResourceGraph::create_root`] for quotas), and taps and transfers may
//! only connect reserves of the same kind; cross-kind attempts fail with
//! the typed [`GraphError::KindMismatch`]. The [`Quantity`]/[`Rate`]
//! newtypes tag raw grain amounts with their kind at the API boundary
//! ([`ResourceGraph::level_typed`] and friends).
//!
//! # Determinism and conservation
//!
//! Within a tick every tap computes its desired transfer from a
//! start-of-tick snapshot of source levels, then transfers are applied in
//! tap-creation order, clamped to the source's remaining non-negative
//! balance (earlier-created taps win when a source is oversubscribed; the
//! paper leaves this unspecified). Creation order is tracked explicitly
//! ([`Tap::seq`]), so the guarantee survives arena-slot reuse. All
//! arithmetic is exact integer grains, so **per resource kind**
//!
//! > total injected == Σ balances + total consumed
//!
//! holds *exactly* at every instant ([`ResourceGraph::totals_for`]), and is
//! asserted by property tests. The global sum over kinds
//! ([`ResourceGraph::totals`]) conserves as a corollary.
//!
//! # Execution: the `FlowEngine`
//!
//! Ticks are executed by the `FlowEngine` (see [`crate::flow`]) embedded in
//! the graph. It maintains a per-source adjacency index (tap lists keyed by
//! source reserve, in creation order) that `create_tap`, `delete_tap`,
//! `set_tap_rate`, and `delete_reserve` keep up to date; per-tick work then
//! needs no allocation (a reusable epoch-stamped snapshot buffer covers the
//! sources of proportional taps, and quiescent sources are skipped).
//! Multi-tick spans are planned as partitioned *runs*: sources provably
//! linear for the run are applied in closed form, and only taps adjacent
//! to dynamic reserves (live proportional sources, clamp boundaries,
//! refillable empties — every energy source when decay is on) tick, over
//! dense SoA arrays. Long `flow_until` spans cost work proportional to
//! graph *events* plus the dynamic island, not tick count × graph size.
//! The engine's results are bit-identical to the naive per-tick loop,
//! which is retained as [`ResourceGraph::flow_until_reference`] for
//! differential testing and benchmarking.

use cinder_label::{Label, PrivilegeSet};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::arena::{Arena, RawId};
use crate::decay::DecayConfig;
use crate::errors::GraphError;
use crate::flow::FlowEngine;
use crate::kind::{Quantity, Rate, ResourceKind};
use crate::reserve::Reserve;
use crate::tap::{RateSpec, Tap};

/// Identifies a reserve in a [`ResourceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReserveId(pub(crate) RawId);

/// Identifies a tap in a [`ResourceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TapId(pub(crate) RawId);

/// The security identity performing a graph operation: a thread's label and
/// privileges, or the kernel itself (which bypasses checks — it is the
/// enforcement mechanism, not a subject of it).
#[derive(Debug, Clone)]
pub struct Actor {
    label: Label,
    privs: PrivilegeSet,
    is_kernel: bool,
}

impl Actor {
    /// The kernel actor: bypasses all label checks.
    pub fn kernel() -> Self {
        Actor {
            label: Label::default_label(),
            privs: PrivilegeSet::empty(),
            is_kernel: true,
        }
    }

    /// A user-level actor with the given label and privileges.
    pub fn new(label: Label, privs: PrivilegeSet) -> Self {
        Actor {
            label,
            privs,
            is_kernel: false,
        }
    }

    /// An unprivileged actor at the default label (most application code).
    pub fn unprivileged() -> Self {
        Actor::new(Label::default_label(), PrivilegeSet::empty())
    }

    /// The actor's label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The actor's privileges.
    pub fn privs(&self) -> &PrivilegeSet {
        &self.privs
    }

    /// True for the kernel actor.
    pub fn is_kernel(&self) -> bool {
        self.is_kernel
    }

    /// Grants ownership of a category (e.g. after `category_alloc`).
    pub fn grant(&mut self, category: cinder_label::Category) {
        self.privs.grant(category);
    }

    fn can_observe(&self, object: &Label) -> bool {
        self.is_kernel || self.label.can_observe(&self.privs, object)
    }

    fn can_modify(&self, object: &Label) -> bool {
        self.is_kernel || self.label.can_modify(&self.privs, object)
    }

    fn can_use(&self, object: &Label) -> bool {
        self.is_kernel || self.label.can_use(&self.privs, object)
    }
}

impl Default for Actor {
    fn default() -> Self {
        Actor::unprivileged()
    }
}

/// Graph-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Cadence of batch tap execution (paper: "in practice, transfers are
    /// executed in batch periodically").
    pub flow_tick: SimDuration,
    /// The global anti-hoarding decay; `None` disables it (used by the
    /// hoarding ablation and Fig 12b's short runs).
    pub decay: Option<DecayConfig>,
    /// Enables the paper's "more fundamental" anti-hoarding alternative
    /// (§5.2.2): `reserve_clone` semantics plus drain-rate-preserving
    /// transfer checks.
    pub strict_anti_hoarding: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            flow_tick: SimDuration::from_millis(100),
            decay: Some(DecayConfig::paper_default()),
            strict_anti_hoarding: false,
        }
    }
}

/// A snapshot of conservation totals, for invariant checks and experiment
/// reporting. Produced per resource kind by [`ResourceGraph::totals_for`]
/// and summed over all kinds by [`ResourceGraph::totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphTotals {
    /// Total ever injected (initial roots + recharges).
    pub injected: Energy,
    /// Sum of all current reserve balances (including roots and any debt,
    /// which is negative).
    pub balances: Energy,
    /// Total consumed through [`ResourceGraph::consume`] and friends.
    pub consumed: Energy,
}

impl GraphTotals {
    /// The exact conservation invariant.
    pub fn conserved(&self) -> bool {
        self.injected == self.balances + self.consumed
    }
}

/// The resource consumption graph.
pub struct ResourceGraph {
    reserves: Arena<Reserve>,
    taps: Arena<Tap>,
    battery: ReserveId,
    /// Per-kind root reserves; `roots[Energy] == Some(battery)` always.
    roots: [Option<ReserveId>; ResourceKind::COUNT],
    config: GraphConfig,
    decay_ppm_per_tick: u64,
    now: SimTime,
    total_injected: [Energy; ResourceKind::COUNT],
    total_consumed: [Energy; ResourceKind::COUNT],
    /// Indexed batch-flow executor; its adjacency index is maintained by
    /// every tap/reserve mutator below.
    flow: FlowEngine,
    /// Next tap creation sequence number ([`Tap::seq`]).
    next_tap_seq: u64,
}

impl ResourceGraph {
    /// Creates a graph whose root (battery) reserve holds `initial` energy,
    /// with default configuration.
    pub fn new(initial: Energy) -> Self {
        Self::with_config(initial, GraphConfig::default())
    }

    /// Creates a graph with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is negative or the flow tick is zero.
    pub fn with_config(initial: Energy, config: GraphConfig) -> Self {
        assert!(!initial.is_negative(), "battery cannot start in debt");
        assert!(!config.flow_tick.is_zero(), "flow tick must be positive");
        let mut reserves = Arena::new();
        let mut battery = Reserve::new(
            "battery",
            Label::default_label(),
            ResourceKind::Energy,
            SimTime::ZERO,
        );
        battery.set_decay_exempt(true);
        battery.credit(initial);
        let battery_id = ReserveId(reserves.insert(battery));
        // (Exempt: never decay-eligible, so no engine notification needed.)
        let decay_ppm_per_tick = config
            .decay
            .map(|d| d.leak_ppm_per_tick(config.flow_tick))
            .unwrap_or(0);
        let mut roots = [None; ResourceKind::COUNT];
        roots[ResourceKind::Energy.index()] = Some(battery_id);
        let mut total_injected = [Energy::ZERO; ResourceKind::COUNT];
        total_injected[ResourceKind::Energy.index()] = initial;
        ResourceGraph {
            reserves,
            taps: Arena::new(),
            battery: battery_id,
            roots,
            config,
            decay_ppm_per_tick,
            now: SimTime::ZERO,
            total_injected,
            total_consumed: [Energy::ZERO; ResourceKind::COUNT],
            flow: FlowEngine::new(),
            next_tap_seq: 0,
        }
    }

    /// The root reserve representing the battery (paper §3.4: "The root of
    /// the graph is a reserve representing the system battery") — the
    /// [`ResourceKind::Energy`] root.
    pub fn battery(&self) -> ReserveId {
        self.battery
    }

    /// The root reserve of a kind, if one exists. The energy root (the
    /// battery) always does; quota roots are created with
    /// [`ResourceGraph::create_root`].
    pub fn root(&self, kind: ResourceKind) -> Option<ReserveId> {
        self.roots[kind.index()]
    }

    /// Creates the root pool for a non-energy kind — §9's "replacing the
    /// logical battery with a pool of network bytes". Kernel-only, like
    /// [`ResourceGraph::inject`]: roots mint resources.
    ///
    /// The root is decay-exempt (quotas do not decay), cannot be deleted,
    /// and its initial balance counts toward the kind's injected total.
    pub fn create_root(
        &mut self,
        actor: &Actor,
        name: &str,
        initial: Quantity,
    ) -> Result<ReserveId, GraphError> {
        if !actor.is_kernel {
            return Err(GraphError::PermissionDenied { op: "create_root" });
        }
        if initial.raw().is_negative() {
            return Err(GraphError::InvalidAmount);
        }
        let kind = initial.kind();
        if self.roots[kind.index()].is_some() {
            return Err(GraphError::DuplicateRoot { kind });
        }
        let mut root = Reserve::new(name, Label::default_label(), kind, self.now);
        root.set_decay_exempt(true);
        root.credit(initial.raw());
        let id = ReserveId(self.reserves.insert(root));
        self.roots[kind.index()] = Some(id);
        self.total_injected[kind.index()] += initial.raw();
        Ok(id)
    }

    /// The time up to which flows have been processed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Read-only access to a reserve (kernel-internal introspection; label
    /// checks apply to the syscall surface, not to accounting).
    pub fn reserve(&self, id: ReserveId) -> Option<&Reserve> {
        self.reserves.get(id.0)
    }

    /// Read-only access to a tap.
    pub fn tap(&self, id: TapId) -> Option<&Tap> {
        self.taps.get(id.0)
    }

    /// Iterates over `(id, reserve)` pairs in creation order.
    pub fn reserves(&self) -> impl Iterator<Item = (ReserveId, &Reserve)> {
        self.reserves.iter().map(|(id, r)| (ReserveId(id), r))
    }

    /// Iterates over `(id, tap)` pairs in creation order.
    pub fn taps(&self) -> impl Iterator<Item = (TapId, &Tap)> {
        self.taps.iter().map(|(id, t)| (TapId(id), t))
    }

    /// Number of live reserves (including the battery).
    pub fn reserve_count(&self) -> usize {
        self.reserves.len()
    }

    /// Number of live taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    // ----- creation / deletion ------------------------------------------

    /// Creates an empty [`ResourceKind::Energy`] reserve protected by
    /// `label` (the single-resource constructor the paper's API has; see
    /// [`ResourceGraph::create_reserve_kind`] for quota kinds).
    pub fn create_reserve(
        &mut self,
        actor: &Actor,
        name: &str,
        label: Label,
    ) -> Result<ReserveId, GraphError> {
        self.create_reserve_kind(actor, name, label, ResourceKind::Energy)
    }

    /// Creates an empty reserve of the given kind protected by `label`.
    ///
    /// Requires that the actor could write an object at `label` (otherwise a
    /// thread could mint objects it may not touch), and that the kind's root
    /// pool exists (deleting the reserve settles its balance there).
    pub fn create_reserve_kind(
        &mut self,
        actor: &Actor,
        name: &str,
        label: Label,
        kind: ResourceKind,
    ) -> Result<ReserveId, GraphError> {
        if !actor.can_modify(&label) {
            return Err(GraphError::PermissionDenied {
                op: "create_reserve",
            });
        }
        if self.roots[kind.index()].is_none() {
            return Err(GraphError::NoRootForKind { kind });
        }
        let id = ReserveId(
            self.reserves
                .insert(Reserve::new(name, label, kind, self.now)),
        );
        self.flow
            .on_reserve_eligibility(id.0, kind == ResourceKind::Energy);
        Ok(id)
    }

    /// Deletes a reserve. Its remaining balance is returned to the root of
    /// its kind (the battery for energy); outstanding debt is settled *from*
    /// that root. All taps touching the reserve are garbage-collected
    /// (paper §5.2: deleting taps revokes power sources).
    ///
    /// Returns the (possibly negative) balance that was settled.
    pub fn delete_reserve(&mut self, actor: &Actor, id: ReserveId) -> Result<Energy, GraphError> {
        if self.roots.contains(&Some(id)) {
            return Err(GraphError::RootReserve);
        }
        let reserve = self.reserves.get(id.0).ok_or(GraphError::ReserveNotFound)?;
        let label = reserve.label().clone();
        let kind = reserve.kind();
        if !actor.can_modify(&label) {
            return Err(GraphError::PermissionDenied {
                op: "delete_reserve",
            });
        }
        // GC taps referencing this reserve (and unindex them).
        let dead: Vec<(RawId, u64, RawId, RawId, RateSpec)> = self
            .taps
            .iter()
            .filter(|(_, t)| t.source() == id || t.sink() == id)
            .map(|(tid, t)| (tid, t.seq(), t.source().0, t.sink().0, t.rate()))
            .collect();
        for (tid, seq, source, sink, rate) in dead {
            self.flow.on_tap_removed(seq, source, sink, rate);
            self.taps.remove(tid);
        }
        let reserve = self.reserves.remove(id.0).expect("checked above");
        self.flow.on_reserve_eligibility(id.0, false);
        let balance = reserve.balance();
        let root = self.roots[kind.index()].expect("reserves require a root for their kind");
        let root = self.reserve_mut(root);
        if balance.is_negative() {
            // Debt settlement: the consumed amount was already counted when
            // the debt was incurred; the kind's root pays the outstanding
            // amount so the per-kind balance sum stays conserved.
            root.debit_outflow(-balance);
        } else {
            root.credit(balance);
        }
        Ok(balance)
    }

    /// Marks a reserve as exempt from the global decay. Kernel-only: the
    /// paper exempts only the trusted netd pool (§5.5.2).
    pub fn set_decay_exempt(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        exempt: bool,
    ) -> Result<(), GraphError> {
        if !actor.is_kernel {
            return Err(GraphError::PermissionDenied {
                op: "set_decay_exempt",
            });
        }
        let r = self
            .reserves
            .get_mut(id.0)
            .ok_or(GraphError::ReserveNotFound)?;
        r.set_decay_exempt(exempt);
        // Mirror the reference decay rule exactly: the battery is excluded
        // by id (it is the decay's sink), independent of its exempt flag.
        let eligible = !exempt && r.kind() == ResourceKind::Energy && id != self.battery;
        self.flow.on_reserve_eligibility(id.0, eligible);
        Ok(())
    }

    /// Creates a tap from `source` to `sink`. Both ends must hold the same
    /// [`ResourceKind`] — a tap cannot turn bytes into joules.
    ///
    /// Paper §3.5: a tap "needs privileges to observe and modify both
    /// reserve levels; to aid with this, taps can have privileges embedded
    /// in them". The creating actor must hold observe+modify on both ends;
    /// its privileges are embedded in the tap.
    pub fn create_tap(
        &mut self,
        actor: &Actor,
        name: &str,
        source: ReserveId,
        sink: ReserveId,
        rate: RateSpec,
        tap_label: Label,
    ) -> Result<TapId, GraphError> {
        if source == sink {
            return Err(GraphError::SameReserve);
        }
        let src = self
            .reserves
            .get(source.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let (src_label, src_kind) = (src.label().clone(), src.kind());
        let sink_r = self
            .reserves
            .get(sink.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let (sink_label, sink_kind) = (sink_r.label().clone(), sink_r.kind());
        if src_kind != sink_kind {
            return Err(GraphError::KindMismatch {
                op: "create_tap",
                expected: src_kind,
                found: sink_kind,
            });
        }
        if !actor.can_use(&src_label) || !actor.can_use(&sink_label) {
            return Err(GraphError::PermissionDenied { op: "create_tap" });
        }
        if !actor.can_modify(&tap_label) {
            return Err(GraphError::PermissionDenied { op: "create_tap" });
        }
        let tap = Tap::new(name, source, sink, rate, tap_label, actor.privs.clone());
        Ok(self.insert_tap(tap))
    }

    /// Inserts a tap, assigning its creation sequence and registering it in
    /// the flow index. All tap creation funnels through here.
    fn insert_tap(&mut self, mut tap: Tap) -> TapId {
        let seq = self.next_tap_seq;
        self.next_tap_seq += 1;
        tap.set_seq(seq);
        let source = tap.source().0;
        let sink = tap.sink().0;
        let rate = tap.rate();
        let id = TapId(self.taps.insert(tap));
        self.flow.on_tap_created(id, seq, source, sink, rate);
        id
    }

    /// Changes a tap's rate. Requires modify on the *tap's* label — this is
    /// how the task manager stays the only thread able to throttle an app's
    /// foreground tap (paper §5.4).
    pub fn set_tap_rate(
        &mut self,
        actor: &Actor,
        id: TapId,
        rate: RateSpec,
    ) -> Result<(), GraphError> {
        let tap = self.taps.get_mut(id.0).ok_or(GraphError::TapNotFound)?;
        if !actor.can_modify(&tap.label().clone()) && !actor.is_kernel {
            return Err(GraphError::PermissionDenied { op: "set_tap_rate" });
        }
        let (source, old) = (tap.source().0, tap.rate());
        tap.set_rate(rate);
        self.flow.on_tap_rate_changed(source, old, rate);
        Ok(())
    }

    /// Deletes a tap (revoking the power source it represented).
    pub fn delete_tap(&mut self, actor: &Actor, id: TapId) -> Result<(), GraphError> {
        let tap = self.taps.get(id.0).ok_or(GraphError::TapNotFound)?;
        let (label, seq, source, sink, rate) = (
            tap.label().clone(),
            tap.seq(),
            tap.source().0,
            tap.sink().0,
            tap.rate(),
        );
        if !actor.can_modify(&label) {
            return Err(GraphError::PermissionDenied { op: "delete_tap" });
        }
        self.flow.on_tap_removed(seq, source, sink, rate);
        self.taps.remove(id.0);
        Ok(())
    }

    // ----- balance operations -------------------------------------------

    /// Reads a reserve's level. Requires observe (paper §3.2: applications
    /// poll reserve levels to adapt, §5.3).
    pub fn level(&self, actor: &Actor, id: ReserveId) -> Result<Energy, GraphError> {
        let r = self.reserves.get(id.0).ok_or(GraphError::ReserveNotFound)?;
        if !actor.can_observe(r.label()) {
            return Err(GraphError::PermissionDenied { op: "level" });
        }
        Ok(r.balance())
    }

    /// Moves `amount` (raw grains) between reserves of the same kind
    /// immediately (paper §3.2: "reserve-to-reserve transfer provided it is
    /// permitted to modify both reserves"). Fails without side effects if
    /// the kinds differ or the source cannot cover it.
    pub fn transfer(
        &mut self,
        actor: &Actor,
        from: ReserveId,
        to: ReserveId,
        amount: Energy,
    ) -> Result<(), GraphError> {
        if from == to {
            return Err(GraphError::SameReserve);
        }
        if amount.is_negative() {
            return Err(GraphError::InvalidAmount);
        }
        let from_r = self
            .reserves
            .get(from.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let from_kind = from_r.kind();
        let to_r = self.reserves.get(to.0).ok_or(GraphError::ReserveNotFound)?;
        let to_kind = to_r.kind();
        if from_kind != to_kind {
            return Err(GraphError::KindMismatch {
                op: "transfer",
                expected: from_kind,
                found: to_kind,
            });
        }
        // Transferring out requires full use of the source (the outcome
        // reveals its level); filling the sink requires modify. The kernel
        // bypasses label checks (it is the enforcement mechanism), so the
        // label clones — netd's per-poll contributions hit this path every
        // flow tick — are skipped outright for it.
        if !actor.is_kernel {
            let from_label = self.reserves.get(from.0).expect("checked").label().clone();
            let to_label = self.reserves.get(to.0).expect("checked").label().clone();
            if !actor.can_use(&from_label) || !actor.can_modify(&to_label) {
                return Err(GraphError::PermissionDenied { op: "transfer" });
            }
        }
        if self.config.strict_anti_hoarding {
            self.check_strict_transfer(actor, from, to)?;
        }
        let src = self.reserve_mut(from);
        let available = src.balance();
        if available < amount {
            return Err(GraphError::InsufficientResources {
                needed: amount,
                available,
            });
        }
        src.debit_outflow(amount);
        self.reserve_mut(to).credit(amount);
        Ok(())
    }

    /// Consumes `amount` from a reserve, failing without side effects if the
    /// balance is insufficient (the kernel "prevents threads from performing
    /// actions for which their reserves do not have sufficient resources").
    pub fn consume(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Energy,
    ) -> Result<(), GraphError> {
        if amount.is_negative() {
            return Err(GraphError::InvalidAmount);
        }
        let r = self.reserves.get(id.0).ok_or(GraphError::ReserveNotFound)?;
        if !actor.can_use(r.label()) {
            return Err(GraphError::PermissionDenied { op: "consume" });
        }
        if r.balance() < amount {
            return Err(GraphError::InsufficientResources {
                needed: amount,
                available: r.balance(),
            });
        }
        let kind = r.kind();
        self.reserve_mut(id).debit_consumed(amount);
        self.total_consumed[kind.index()] += amount;
        Ok(())
    }

    /// Consumes `amount`, allowing the balance to go negative. Paper §5.5.2:
    /// "threads can debit their own reserves up to or into debt even if the
    /// cost can only be determined after-the-fact" (billing received
    /// packets). Also used by the scheduler, whose quantum granularity can
    /// overshoot by at most one quantum.
    pub fn consume_with_debt(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Energy,
    ) -> Result<(), GraphError> {
        if amount.is_negative() {
            return Err(GraphError::InvalidAmount);
        }
        let r = self.reserves.get(id.0).ok_or(GraphError::ReserveNotFound)?;
        if !actor.can_use(r.label()) {
            return Err(GraphError::PermissionDenied { op: "consume" });
        }
        let kind = r.kind();
        self.reserve_mut(id).debit_consumed(amount);
        self.total_consumed[kind.index()] += amount;
        Ok(())
    }

    /// Sweeps the entire non-negative balance of `from` into `to` as the
    /// kernel, returning the amount moved (zero when empty, negative, or
    /// either id is stale). One probe per endpoint, no label checks — this
    /// is netd's per-poll contribution ("contributes the energy acquired by
    /// its taps"), which runs every flow tick for the whole pooling window.
    /// Kinds must match; a mismatch moves nothing.
    pub fn sweep_kernel(&mut self, from: ReserveId, to: ReserveId) -> Energy {
        if from == to {
            return Energy::ZERO;
        }
        let Some(src) = self.reserves.get(from.0) else {
            return Energy::ZERO;
        };
        let amount = src.balance().clamp_non_negative();
        if !amount.is_positive() {
            return Energy::ZERO;
        }
        let kind = src.kind();
        match self.reserves.get_mut(to.0) {
            Some(dst) if dst.kind() == kind => dst.credit(amount),
            _ => return Energy::ZERO,
        }
        self.reserves
            .get_mut(from.0)
            .expect("probed above")
            .debit_outflow(amount);
        amount
    }

    /// [`ResourceGraph::consume_with_debt`] as the kernel, in one arena
    /// probe: no label check (the kernel is the enforcement mechanism, not
    /// a subject of it) and no second lookup. The scheduler charges every
    /// run quantum through this.
    pub(crate) fn consume_with_debt_kernel(
        &mut self,
        id: ReserveId,
        amount: Energy,
    ) -> Result<(), GraphError> {
        debug_assert!(!amount.is_negative());
        let r = self
            .reserves
            .get_mut(id.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let kind = r.kind();
        r.debit_consumed(amount);
        self.total_consumed[kind.index()] += amount;
        Ok(())
    }

    /// Injects fresh resources into a reserve (battery recharge, experiment
    /// setup). Kernel-only.
    pub fn inject(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Energy,
    ) -> Result<(), GraphError> {
        if !actor.is_kernel {
            return Err(GraphError::PermissionDenied { op: "inject" });
        }
        if amount.is_negative() {
            return Err(GraphError::InvalidAmount);
        }
        let r = self
            .reserves
            .get_mut(id.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let kind = r.kind();
        r.credit(amount);
        self.total_injected[kind.index()] += amount;
        Ok(())
    }

    /// Convenience for the paper's subdivision example (§3.2): creates a new
    /// reserve (of the same kind as `from`) and moves `amount` into it.
    pub fn split_reserve(
        &mut self,
        actor: &Actor,
        from: ReserveId,
        name: &str,
        label: Label,
        amount: Energy,
    ) -> Result<ReserveId, GraphError> {
        let kind = self
            .reserves
            .get(from.0)
            .ok_or(GraphError::ReserveNotFound)?
            .kind();
        let new = self.create_reserve_kind(actor, name, label, kind)?;
        match self.transfer(actor, from, new, amount) {
            Ok(()) => Ok(new),
            Err(e) => {
                // Roll back the freshly created (still empty) reserve.
                let _ = self.reserves.remove(new.0);
                self.flow.on_reserve_eligibility(new.0, false);
                Err(e)
            }
        }
    }

    // ----- strict anti-hoarding (paper §5.2.2) ---------------------------

    /// The total proportional drain on a reserve, in ppm/s, counting
    /// backward-proportional taps (and used to compare "fast-draining" vs
    /// "slow-draining" reserves in strict mode).
    pub fn drain_ppm_per_s(&self, id: ReserveId) -> u64 {
        self.taps
            .iter()
            .filter(|(_, t)| t.source() == id)
            .map(|(_, t)| match t.rate() {
                RateSpec::Proportional { ppm_per_s } => ppm_per_s,
                RateSpec::Const(_) => 0,
            })
            .sum()
    }

    fn check_strict_transfer(
        &self,
        actor: &Actor,
        from: ReserveId,
        to: ReserveId,
    ) -> Result<(), GraphError> {
        if actor.is_kernel {
            return Ok(());
        }
        let from_drain = self.drain_ppm_per_s(from);
        let to_drain = self.drain_ppm_per_s(to);
        if to_drain >= from_drain {
            return Ok(());
        }
        // Moving to a slower-draining reserve is hoarding unless the actor
        // could have removed the source's proportional taps anyway.
        let may_remove_all = self
            .taps
            .iter()
            .filter(|(_, t)| {
                t.source() == from && matches!(t.rate(), RateSpec::Proportional { .. })
            })
            .all(|(_, t)| actor.can_modify(t.label()));
        if may_remove_all {
            Ok(())
        } else {
            Err(GraphError::StrictModeViolation)
        }
    }

    /// The paper's proposed `reserve_clone()` (§5.2.2): creates a reserve
    /// that inherits duplicates of every backward-proportional tap on `from`
    /// that the caller lacks permission to remove, so the clone drains at
    /// least as fast as the original. The clone holds the same
    /// [`ResourceKind`] as `from`.
    pub fn reserve_clone(
        &mut self,
        actor: &Actor,
        from: ReserveId,
        name: &str,
        label: Label,
    ) -> Result<ReserveId, GraphError> {
        let kind = self
            .reserves
            .get(from.0)
            .ok_or(GraphError::ReserveNotFound)?
            .kind();
        self.reserve_clone_as(actor, from, name, label, kind)
    }

    /// [`ResourceGraph::reserve_clone`] with the clone's kind made explicit:
    /// requesting any kind other than `from`'s fails with the typed
    /// [`GraphError::KindMismatch`] before anything is created — the
    /// inherited backward taps could never legally connect the clone
    /// otherwise.
    pub fn reserve_clone_as(
        &mut self,
        actor: &Actor,
        from: ReserveId,
        name: &str,
        label: Label,
        kind: ResourceKind,
    ) -> Result<ReserveId, GraphError> {
        // Validate `from` exists and is observable before creating anything.
        let src = self
            .reserves
            .get(from.0)
            .ok_or(GraphError::ReserveNotFound)?;
        if src.kind() != kind {
            return Err(GraphError::KindMismatch {
                op: "reserve_clone",
                expected: src.kind(),
                found: kind,
            });
        }
        if !actor.can_observe(src.label()) {
            return Err(GraphError::PermissionDenied {
                op: "reserve_clone",
            });
        }
        let new = self.create_reserve_kind(actor, name, label, kind)?;
        let inherited: Vec<(String, ReserveId, RateSpec, Label, PrivilegeSet)> = self
            .taps
            .iter()
            .filter(|(_, t)| {
                t.source() == from
                    && matches!(t.rate(), RateSpec::Proportional { .. })
                    && !actor.can_modify(t.label())
            })
            .map(|(_, t)| {
                (
                    format!("{}(cloned)", t.name()),
                    t.sink(),
                    t.rate(),
                    t.label().clone(),
                    t.embedded_privs().clone(),
                )
            })
            .collect();
        for (tname, sink, rate, tlabel, privs) in inherited {
            let tap = Tap::new(&tname, new, sink, rate, tlabel, privs);
            self.insert_tap(tap);
        }
        Ok(new)
    }

    // ----- flows ----------------------------------------------------------

    /// Advances batch tap execution and decay up to `now`. Whole ticks only;
    /// the fractional tail carries to the next call.
    ///
    /// Executed by the embedded `FlowEngine` ([`crate::flow`]): the span
    /// is planned as partitioned *runs* — sources provably linear for the
    /// run are applied in closed form, and only the taps adjacent to
    /// dynamic reserves (live proportional sources, clamp boundaries,
    /// refillable empties, and every energy source when decay is on) are
    /// ticked, over dense SoA arrays. Sub-planning-threshold spans run
    /// against the per-source index with no per-tick allocation. Results
    /// are bit-identical to [`ResourceGraph::flow_until_reference`].
    pub fn flow_until(&mut self, now: SimTime) {
        let tick = self.config.flow_tick;
        let span = now.saturating_since(self.now);
        if span < tick {
            // Sub-tick call (the kernel polls every quantum): nothing due,
            // and the division below is hot-loop cost worth skipping.
            return;
        }
        // The kernel's per-quantum cadence lands here with exactly one tick
        // due almost every call; a compare beats the u128 division.
        let mut remaining = if span < tick + tick {
            1
        } else {
            span.div_duration(tick)
        };
        let battery = self.battery.0;
        // Once a run comes back too short (a source hovering within a few
        // ticks of its clamp boundary, or a span too short to plan) we
        // settle the rest of this call tick by tick: re-planning is
        // O(R + T), so a plan that only buys a tick or two costs more than
        // it saves.
        const MIN_PROFITABLE_RUN: u64 = 4;
        let mut try_span = true;
        while remaining > 0 {
            if try_span {
                let advanced = self.flow.run_span(
                    &mut self.reserves,
                    &mut self.taps,
                    tick,
                    remaining,
                    self.decay_ppm_per_tick,
                    battery,
                );
                if advanced < MIN_PROFITABLE_RUN {
                    try_span = false;
                }
                if advanced > 0 {
                    self.now += tick * advanced;
                    remaining -= advanced;
                    continue;
                }
            }
            self.flow.tick(
                &mut self.reserves,
                &mut self.taps,
                battery,
                self.decay_ppm_per_tick,
                tick,
            );
            self.now += tick;
            remaining -= 1;
        }
    }

    /// True when no flow tick can change any reserve balance from here on
    /// (absent outside writes): every tap is zero-rate or *starved* — its
    /// source holds no positive balance — and every decay-eligible balance
    /// is small enough that its per-tick leak rounds to zero. Starved
    /// constant taps still advance their sub-microjoule carries, which
    /// [`ResourceGraph::flow_until`] settles exactly over any span, so a
    /// frozen graph's flow is state-preserving however far it jumps.
    ///
    /// Freezing is *stable*: taps only move energy out of positive
    /// balances and decay only shrinks them, so nothing inside the flow
    /// itself can ever un-freeze a frozen graph — only an outside credit
    /// can. The kernel's frozen fast-forward leans on exactly that: once a
    /// drained device proves this certificate (and that no event, radio
    /// transition, or net-stack action can credit anything), whole spans
    /// are provably inert. O(T + D) over live taps and decay-eligible
    /// reserves.
    pub fn flow_is_frozen(&self) -> bool {
        for (_, tap) in self.taps.iter() {
            let live = match tap.rate() {
                RateSpec::Const(p) => p.as_microwatts() > 0,
                RateSpec::Proportional { ppm_per_s } => ppm_per_s > 0,
            };
            if !live {
                continue;
            }
            if self
                .reserves
                .get(tap.source().0)
                .is_some_and(|r| r.balance().is_positive())
            {
                return false;
            }
        }
        self.flow
            .decay_is_inert(&self.reserves, self.decay_ppm_per_tick)
    }

    /// The naive per-tick reference model the `FlowEngine` replaced:
    /// a full `BTreeMap` snapshot of every reserve and a scan of every tap,
    /// every tick. Kept (gated behind `cfg(test)` and the `reference-flow`
    /// feature) as the spec for differential property tests and as the
    /// "old" side of the `flow_hot_path` criterion bench.
    ///
    /// Must remain byte-identical in effect to [`ResourceGraph::flow_until`]
    /// on any graph and any mutation interleaving.
    #[cfg(any(test, feature = "reference-flow"))]
    pub fn flow_until_reference(&mut self, now: SimTime) {
        let tick = self.config.flow_tick;
        while self.now + tick <= now {
            self.flow_one_tick_reference(tick);
            self.now += tick;
        }
    }

    #[cfg(any(test, feature = "reference-flow"))]
    fn flow_one_tick_reference(&mut self, dt: SimDuration) {
        // Start-of-tick snapshot so results are independent of tap order
        // (except when a source is oversubscribed; see module docs).
        let snapshot: std::collections::BTreeMap<RawId, Energy> = self
            .reserves
            .iter()
            .map(|(id, r)| (id, r.balance()))
            .collect();
        // Apply in creation order (stable against arena slot reuse).
        let mut tap_ids: Vec<(u64, RawId)> =
            self.taps.iter().map(|(tid, t)| (t.seq(), tid)).collect();
        tap_ids.sort_unstable();
        for (_, tid) in tap_ids {
            let Some(tap) = self.taps.get_mut(tid) else {
                continue;
            };
            let source = tap.source();
            let sink = tap.sink();
            let src_level = snapshot.get(&source.0).copied().unwrap_or(Energy::ZERO);
            let desired = tap.desired_transfer(src_level, dt);
            if desired.is_zero() {
                continue;
            }
            let available = match self.reserves.get(source.0) {
                Some(r) => r.balance().clamp_non_negative(),
                None => continue,
            };
            let amount = desired.min(available);
            if amount.is_zero() {
                continue;
            }
            self.reserve_mut(source).debit_outflow(amount);
            self.reserve_mut(sink).credit(amount);
        }
        // Global decay: the implicit backward tap to the battery.
        crate::flow::decay_tick(&mut self.reserves, self.battery.0, self.decay_ppm_per_tick);
    }

    // ----- typed API boundary ---------------------------------------------

    /// Reads a reserve's level as a kind-tagged [`Quantity`] (requires
    /// observe, like [`ResourceGraph::level`]).
    pub fn level_typed(&self, actor: &Actor, id: ReserveId) -> Result<Quantity, GraphError> {
        let kind = self
            .reserves
            .get(id.0)
            .ok_or(GraphError::ReserveNotFound)?
            .kind();
        Ok(Quantity::new(kind, self.level(actor, id)?))
    }

    /// [`ResourceGraph::transfer`] with a kind-tagged amount: fails with
    /// [`GraphError::KindMismatch`] if the quantity's kind is not the source
    /// reserve's (the raw transfer then enforces source kind == sink kind).
    pub fn transfer_typed(
        &mut self,
        actor: &Actor,
        from: ReserveId,
        to: ReserveId,
        amount: Quantity,
    ) -> Result<(), GraphError> {
        self.check_kind("transfer", from, amount.kind())?;
        self.transfer(actor, from, to, amount.raw())
    }

    /// [`ResourceGraph::consume`] with a kind-tagged amount.
    pub fn consume_typed(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Quantity,
    ) -> Result<(), GraphError> {
        self.check_kind("consume", id, amount.kind())?;
        self.consume(actor, id, amount.raw())
    }

    /// [`ResourceGraph::consume_with_debt`] with a kind-tagged amount.
    pub fn consume_with_debt_typed(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Quantity,
    ) -> Result<(), GraphError> {
        self.check_kind("consume", id, amount.kind())?;
        self.consume_with_debt(actor, id, amount.raw())
    }

    /// [`ResourceGraph::inject`] with a kind-tagged amount (kernel-only).
    pub fn inject_typed(
        &mut self,
        actor: &Actor,
        id: ReserveId,
        amount: Quantity,
    ) -> Result<(), GraphError> {
        self.check_kind("inject", id, amount.kind())?;
        self.inject(actor, id, amount.raw())
    }

    /// [`ResourceGraph::create_tap`] with a kind-tagged constant rate: the
    /// rate's kind must match the source reserve's (the raw constructor then
    /// enforces source kind == sink kind).
    pub fn create_tap_typed(
        &mut self,
        actor: &Actor,
        name: &str,
        source: ReserveId,
        sink: ReserveId,
        rate: Rate,
        tap_label: Label,
    ) -> Result<TapId, GraphError> {
        self.check_kind("create_tap", source, rate.kind())?;
        self.create_tap(
            actor,
            name,
            source,
            sink,
            RateSpec::constant(rate.raw()),
            tap_label,
        )
    }

    fn check_kind(
        &self,
        op: &'static str,
        id: ReserveId,
        found: ResourceKind,
    ) -> Result<(), GraphError> {
        let expected = self
            .reserves
            .get(id.0)
            .ok_or(GraphError::ReserveNotFound)?
            .kind();
        if expected != found {
            return Err(GraphError::KindMismatch {
                op,
                expected,
                found,
            });
        }
        Ok(())
    }

    // ----- totals ---------------------------------------------------------

    /// Totals summed over **all** resource kinds. Conserved as a corollary
    /// of the per-kind invariant ([`ResourceGraph::totals_for`]); kept as
    /// the convenient single check for all-energy graphs.
    pub fn totals(&self) -> GraphTotals {
        GraphTotals {
            injected: self.total_injected.iter().copied().sum(),
            balances: self.reserves.iter().map(|(_, r)| r.balance()).sum(),
            consumed: self.total_consumed.iter().copied().sum(),
        }
    }

    /// Conservation totals for one resource kind: per kind,
    /// `injected == Σ balances + consumed` exactly — invariant #1 extended
    /// to the multi-resource graph.
    pub fn totals_for(&self, kind: ResourceKind) -> GraphTotals {
        GraphTotals {
            injected: self.total_injected[kind.index()],
            balances: self
                .reserves
                .iter()
                .filter(|(_, r)| r.kind() == kind)
                .map(|(_, r)| r.balance())
                .sum(),
            consumed: self.total_consumed[kind.index()],
        }
    }

    /// Whether any live tap sinks into `id` — O(1), off the flow engine's
    /// inbound index. The kernel's idle fast-forward uses this to decide
    /// whether a byte-blocked send's plan could be refilled by a tap
    /// mid-span (if not, idle quanta over it are provably skippable).
    pub fn has_inbound_tap(&self, id: ReserveId) -> bool {
        self.flow.has_inbound(id.0)
    }

    /// An upper-bound view of the taps draining `id`: the sum of all
    /// constant outbound rates, whether any live proportional tap also
    /// drains it (its rate is level-dependent, so callers needing a static
    /// bound must bail), and the outbound tap count (for per-tick carry
    /// slack). O(outbound taps of `id`), off the flow engine's per-source
    /// index. The kernel's peripheral fast-forward guard folds this into
    /// its zero-inflow span-coverage bound.
    pub fn outbound_drain(&self, id: ReserveId) -> (Power, bool, u32) {
        let mut total = Power::ZERO;
        let mut prop = false;
        let mut count = 0u32;
        for tap_id in self.flow.outbound(id.0) {
            let Some(tap) = self.taps.get(tap_id.0) else {
                continue;
            };
            count += 1;
            match tap.rate() {
                RateSpec::Const(rate) => total += rate,
                RateSpec::Proportional { ppm_per_s } => prop |= ppm_per_s > 0,
            }
        }
        (total, prop, count)
    }

    /// Flow-index introspection for the differential tests.
    #[cfg(test)]
    pub(crate) fn flow_index_len(&self) -> (usize, usize) {
        self.flow.index_len()
    }

    /// Whether the live tap set is all-constant (fast-forward eligible).
    #[cfg(test)]
    pub(crate) fn flow_all_const(&self) -> bool {
        self.flow.all_const()
    }

    fn reserve_mut(&mut self, id: ReserveId) -> &mut Reserve {
        self.reserves
            .get_mut(id.0)
            .expect("stale ReserveId in graph internals")
    }
}

impl std::fmt::Debug for ResourceGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceGraph")
            .field("reserves", &self.reserves.len())
            .field("taps", &self.taps.len())
            .field("now", &self.now)
            .field("totals", &self.totals())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_label::{Category, Level};
    use cinder_sim::Power;

    fn kernel() -> Actor {
        Actor::kernel()
    }

    fn graph() -> ResourceGraph {
        ResourceGraph::new(Energy::from_joules(15_000))
    }

    /// A graph without decay, for arithmetic-exactness tests.
    fn graph_no_decay() -> ResourceGraph {
        ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        )
    }

    #[test]
    fn battery_starts_with_initial_energy() {
        let g = graph();
        assert_eq!(
            g.reserve(g.battery()).unwrap().balance(),
            Energy::from_joules(15_000)
        );
        assert!(g.reserve(g.battery()).unwrap().is_decay_exempt());
        assert!(g.totals().conserved());
    }

    #[test]
    fn figure1_topology_rate_limits_browser() {
        // 15 kJ battery, 750 mW tap, browser cannot outpace the tap.
        let mut g = graph_no_decay();
        let k = kernel();
        let browser = g
            .create_reserve(&k, "browser", Label::default_label())
            .unwrap();
        g.create_tap(
            &k,
            "750mW",
            g.battery(),
            browser,
            RateSpec::constant(Power::from_milliwatts(750)),
            Label::default_label(),
        )
        .unwrap();
        g.flow_until(SimTime::from_secs(10));
        assert_eq!(
            g.level(&k, browser).unwrap(),
            Energy::from_millijoules(7_500)
        );
        assert!(g.totals().conserved());
    }

    #[test]
    fn subdivision_example_800_200() {
        // Paper §3.2: split 1000 mJ into 800 + 200.
        let mut g = graph_no_decay();
        let k = kernel();
        let app = g.create_reserve(&k, "app", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), app, Energy::from_millijoules(1000))
            .unwrap();
        let child = g
            .split_reserve(
                &k,
                app,
                "child",
                Label::default_label(),
                Energy::from_millijoules(200),
            )
            .unwrap();
        assert_eq!(g.level(&k, app).unwrap(), Energy::from_millijoules(800));
        assert_eq!(g.level(&k, child).unwrap(), Energy::from_millijoules(200));
    }

    #[test]
    fn split_rolls_back_on_insufficient_funds() {
        let mut g = graph_no_decay();
        let k = kernel();
        let app = g.create_reserve(&k, "app", Label::default_label()).unwrap();
        let before = g.reserve_count();
        let err = g
            .split_reserve(
                &k,
                app,
                "child",
                Label::default_label(),
                Energy::from_joules(1),
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::InsufficientResources { .. }));
        assert_eq!(g.reserve_count(), before);
    }

    #[test]
    fn transfer_checks_balance_and_labels() {
        let mut g = graph_no_decay();
        let k = kernel();
        let cat = Category::new(1);
        let secret = Label::with(&[(cat, Level::L3)]);
        let protected = g.create_reserve(&k, "protected", secret).unwrap();
        g.transfer(&k, g.battery(), protected, Energy::from_joules(5))
            .unwrap();

        let nobody = Actor::unprivileged();
        let err = g
            .transfer(&nobody, protected, g.battery(), Energy::from_joules(1))
            .unwrap_err();
        assert!(matches!(err, GraphError::PermissionDenied { .. }));

        let owner = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
        g.transfer(&owner, protected, g.battery(), Energy::from_joules(1))
            .unwrap();
        assert_eq!(g.level(&owner, protected).unwrap(), Energy::from_joules(4));
    }

    #[test]
    fn consume_fails_cleanly_when_short() {
        let mut g = graph_no_decay();
        let k = kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_millijoules(1))
            .unwrap();
        let err = g.consume(&k, r, Energy::from_joules(1)).unwrap_err();
        assert!(matches!(err, GraphError::InsufficientResources { .. }));
        // Nothing was consumed.
        assert_eq!(g.level(&k, r).unwrap(), Energy::from_millijoules(1));
        assert_eq!(g.totals().consumed, Energy::ZERO);
    }

    #[test]
    fn consume_with_debt_goes_negative() {
        let mut g = graph_no_decay();
        let k = kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.consume_with_debt(&k, r, Energy::from_millijoules(5))
            .unwrap();
        assert_eq!(g.level(&k, r).unwrap(), Energy::from_millijoules(-5));
        assert!(g.totals().conserved());
    }

    #[test]
    fn unprivileged_cannot_observe_secret_reserve() {
        let mut g = graph_no_decay();
        let k = kernel();
        let secret = Label::with(&[(Category::new(1), Level::L3)]);
        let r = g.create_reserve(&k, "secret", secret).unwrap();
        let nobody = Actor::unprivileged();
        assert!(matches!(
            g.level(&nobody, r),
            Err(GraphError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn unprivileged_cannot_create_integrity_reserve() {
        let mut g = graph_no_decay();
        let protected = Label::with(&[(Category::new(1), Level::L0)]);
        let nobody = Actor::unprivileged();
        assert!(matches!(
            g.create_reserve(&nobody, "x", protected),
            Err(GraphError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn tap_requires_use_on_both_ends() {
        let mut g = graph_no_decay();
        let k = kernel();
        let cat = Category::new(1);
        let secret = Label::with(&[(cat, Level::L3)]);
        let src = g.create_reserve(&k, "src", secret).unwrap();
        let dst = g.create_reserve(&k, "dst", Label::default_label()).unwrap();
        let nobody = Actor::unprivileged();
        assert!(matches!(
            g.create_tap(
                &nobody,
                "steal",
                src,
                dst,
                RateSpec::constant(Power::from_watts(1)),
                Label::default_label()
            ),
            Err(GraphError::PermissionDenied { .. })
        ));
        let owner = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
        assert!(g
            .create_tap(
                &owner,
                "ok",
                src,
                dst,
                RateSpec::constant(Power::from_watts(1)),
                Label::default_label()
            )
            .is_ok());
    }

    #[test]
    fn tap_rate_change_requires_tap_modify() {
        // The task-manager pattern: tap protected by an integrity category
        // only the manager owns.
        let mut g = graph_no_decay();
        let k = kernel();
        let cat = Category::new(7);
        let manager = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
        let app = g.create_reserve(&k, "app", Label::default_label()).unwrap();
        let tap_label = Label::with(&[(cat, Level::L0)]);
        let tap = g
            .create_tap(
                &manager,
                "fg",
                g.battery(),
                app,
                RateSpec::constant(Power::ZERO),
                tap_label,
            )
            .unwrap();
        let app_actor = Actor::unprivileged();
        assert!(matches!(
            g.set_tap_rate(&app_actor, tap, RateSpec::constant(Power::from_watts(1))),
            Err(GraphError::PermissionDenied { .. })
        ));
        g.set_tap_rate(
            &manager,
            tap,
            RateSpec::constant(Power::from_milliwatts(137)),
        )
        .unwrap();
        g.flow_until(SimTime::from_secs(1));
        assert_eq!(g.level(&k, app).unwrap(), Energy::from_millijoules(137));
    }

    #[test]
    fn oversubscribed_source_favours_earlier_taps() {
        let mut g = graph_no_decay();
        let k = kernel();
        let pool = g
            .create_reserve(&k, "pool", Label::default_label())
            .unwrap();
        g.transfer(&k, g.battery(), pool, Energy::from_millijoules(100))
            .unwrap();
        let a = g.create_reserve(&k, "a", Label::default_label()).unwrap();
        let b = g.create_reserve(&k, "b", Label::default_label()).unwrap();
        // Each tap wants 100 mJ within the very first 100 ms tick (1 W), but
        // only 100 mJ exists: the earlier-created tap drains it all.
        for (name, sink) in [("ta", a), ("tb", b)] {
            g.create_tap(
                &k,
                name,
                pool,
                sink,
                RateSpec::constant(Power::from_watts(1)),
                Label::default_label(),
            )
            .unwrap();
        }
        g.flow_until(SimTime::from_secs(1));
        let la = g.level(&k, a).unwrap();
        let lb = g.level(&k, b).unwrap();
        assert_eq!(la + lb, Energy::from_millijoules(100));
        assert_eq!(la, Energy::from_millijoules(100), "earlier tap wins");
        assert_eq!(lb, Energy::ZERO);
        assert_eq!(g.level(&k, pool).unwrap(), Energy::ZERO);
        assert!(g.totals().conserved());
    }

    #[test]
    fn backward_proportional_equilibrium_fig6b() {
        // 70 mW in, 0.1/s backward out: equilibrium at 700 mJ.
        let mut g = graph_no_decay();
        let k = kernel();
        let plugin = g
            .create_reserve(&k, "plugin", Label::default_label())
            .unwrap();
        g.create_tap(
            &k,
            "fwd",
            g.battery(),
            plugin,
            RateSpec::constant(Power::from_milliwatts(70)),
            Label::default_label(),
        )
        .unwrap();
        g.create_tap(
            &k,
            "bwd",
            plugin,
            g.battery(),
            RateSpec::proportional(0.1),
            Label::default_label(),
        )
        .unwrap();
        // Idle plugin: the reserve should converge to ~700 mJ and stay.
        g.flow_until(SimTime::from_secs(300));
        let level = g.level(&k, plugin).unwrap();
        let target = Energy::from_millijoules(700);
        let err = (level - target).as_microjoules().abs();
        assert!(
            err < 20_000, // within 20 mJ of the paper's equilibrium
            "plugin level {level} vs expected {target}"
        );
        assert!(g.totals().conserved());
    }

    #[test]
    fn decay_halves_idle_reserve_over_half_life() {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig::default(), // decay on
        );
        let k = kernel();
        let r = g
            .create_reserve(&k, "hoard", Label::default_label())
            .unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(100))
            .unwrap();
        g.flow_until(SimTime::from_secs(600));
        let level = g.level(&k, r).unwrap().as_joules_f64();
        assert!((level - 50.0).abs() < 1.0, "after one half-life: {level} J");
        g.flow_until(SimTime::from_secs(1200));
        let level = g.level(&k, r).unwrap().as_joules_f64();
        assert!(
            (level - 25.0).abs() < 1.0,
            "after two half-lives: {level} J"
        );
        assert!(g.totals().conserved());
    }

    #[test]
    fn decay_exempt_reserve_keeps_energy() {
        let mut g = graph();
        let k = kernel();
        let pool = g
            .create_reserve(&k, "netd pool", Label::default_label())
            .unwrap();
        g.set_decay_exempt(&k, pool, true).unwrap();
        g.transfer(&k, g.battery(), pool, Energy::from_joules(10))
            .unwrap();
        g.flow_until(SimTime::from_secs(600));
        assert_eq!(g.level(&k, pool).unwrap(), Energy::from_joules(10));
        // Non-kernel actors may not grant exemption.
        let nobody = Actor::unprivileged();
        assert!(matches!(
            g.set_decay_exempt(&nobody, pool, false),
            Err(GraphError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn delete_reserve_returns_balance_and_gcs_taps() {
        let mut g = graph_no_decay();
        let k = kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(2))
            .unwrap();
        g.create_tap(
            &k,
            "in",
            g.battery(),
            r,
            RateSpec::constant(Power::from_watts(1)),
            Label::default_label(),
        )
        .unwrap();
        g.create_tap(
            &k,
            "out",
            r,
            g.battery(),
            RateSpec::proportional(0.5),
            Label::default_label(),
        )
        .unwrap();
        assert_eq!(g.tap_count(), 2);
        let returned = g.delete_reserve(&k, r).unwrap();
        assert_eq!(returned, Energy::from_joules(2));
        assert_eq!(g.tap_count(), 0);
        assert_eq!(
            g.reserve(g.battery()).unwrap().balance(),
            Energy::from_joules(15_000)
        );
        assert!(g.totals().conserved());
    }

    #[test]
    fn delete_indebted_reserve_settles_from_battery() {
        let mut g = graph_no_decay();
        let k = kernel();
        let r = g
            .create_reserve(&k, "debtor", Label::default_label())
            .unwrap();
        g.consume_with_debt(&k, r, Energy::from_joules(3)).unwrap();
        let settled = g.delete_reserve(&k, r).unwrap();
        assert_eq!(settled, Energy::from_joules(-3));
        assert_eq!(
            g.reserve(g.battery()).unwrap().balance(),
            Energy::from_joules(14_997)
        );
        assert!(g.totals().conserved());
    }

    #[test]
    fn battery_cannot_be_deleted() {
        let mut g = graph();
        let k = kernel();
        let battery = g.battery();
        assert!(matches!(
            g.delete_reserve(&k, battery),
            Err(GraphError::RootReserve)
        ));
    }

    #[test]
    fn stale_ids_error_not_panic() {
        let mut g = graph_no_decay();
        let k = kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.delete_reserve(&k, r).unwrap();
        assert!(matches!(g.level(&k, r), Err(GraphError::ReserveNotFound)));
        assert!(matches!(
            g.transfer(&k, g.battery(), r, Energy::from_joules(1)),
            Err(GraphError::ReserveNotFound)
        ));
        assert!(matches!(
            g.consume(&k, r, Energy::from_joules(1)),
            Err(GraphError::ReserveNotFound)
        ));
    }

    #[test]
    fn strict_mode_blocks_hoarding_transfer() {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(100),
            GraphConfig {
                decay: None,
                strict_anti_hoarding: true,
                ..GraphConfig::default()
            },
        );
        let k = kernel();
        let cat = Category::new(1);
        let browser = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
        let taxed = g
            .create_reserve(&k, "taxed", Label::default_label())
            .unwrap();
        let stash = g
            .create_reserve(&k, "stash", Label::default_label())
            .unwrap();
        g.transfer(&k, g.battery(), taxed, Energy::from_joules(10))
            .unwrap();
        // Browser-owned backward tap taxes `taxed` at 0.2/s; the plugin
        // cannot remove it (integrity label owned by browser).
        g.create_tap(
            &browser,
            "tax",
            taxed,
            g.battery(),
            RateSpec::proportional(0.2),
            Label::with(&[(cat, Level::L0)]),
        )
        .unwrap();
        let plugin = Actor::unprivileged();
        // Sidestepping the tax by moving to an untaxed reserve is refused…
        assert!(matches!(
            g.transfer(&plugin, taxed, stash, Energy::from_joules(5)),
            Err(GraphError::StrictModeViolation)
        ));
        // …but the browser, able to remove the tax, may do it.
        g.transfer(&browser, taxed, stash, Energy::from_joules(5))
            .unwrap();
        // And anyone may move toward an *equally or faster* draining sink.
        g.create_tap(
            &browser,
            "tax2",
            stash,
            g.battery(),
            RateSpec::proportional(0.5),
            Label::with(&[(cat, Level::L0)]),
        )
        .unwrap();
        g.transfer(&plugin, taxed, stash, Energy::from_joules(1))
            .unwrap();
    }

    #[test]
    fn reserve_clone_duplicates_unremovable_backward_taps() {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(100),
            GraphConfig {
                decay: None,
                strict_anti_hoarding: true,
                ..GraphConfig::default()
            },
        );
        let k = kernel();
        let cat = Category::new(1);
        let browser = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
        let plugin_res = g
            .create_reserve(&k, "plugin", Label::default_label())
            .unwrap();
        g.create_tap(
            &browser,
            "tax",
            plugin_res,
            g.battery(),
            RateSpec::proportional(0.1),
            Label::with(&[(cat, Level::L0)]),
        )
        .unwrap();
        let plugin = Actor::unprivileged();
        let cloned = g
            .reserve_clone(&plugin, plugin_res, "clone", Label::default_label())
            .unwrap();
        // The clone inherited the 0.1/s tax, so it drains as fast.
        assert_eq!(g.drain_ppm_per_s(cloned), 100_000);
        assert_eq!(g.tap_count(), 2);
        // And transfers into it are therefore permitted.
        g.transfer(&k, g.battery(), plugin_res, Energy::from_joules(4))
            .unwrap();
        g.transfer(&plugin, plugin_res, cloned, Energy::from_joules(2))
            .unwrap();
    }

    #[test]
    fn totals_conserved_through_mixed_workload() {
        let mut g = graph();
        let k = kernel();
        let a = g.create_reserve(&k, "a", Label::default_label()).unwrap();
        let b = g.create_reserve(&k, "b", Label::default_label()).unwrap();
        g.create_tap(
            &k,
            "fill-a",
            g.battery(),
            a,
            RateSpec::constant(Power::from_milliwatts(500)),
            Label::default_label(),
        )
        .unwrap();
        g.create_tap(
            &k,
            "a-to-b",
            a,
            b,
            RateSpec::proportional(0.3),
            Label::default_label(),
        )
        .unwrap();
        for s in 1..=60 {
            g.flow_until(SimTime::from_secs(s));
            if s % 5 == 0 {
                let _ = g.consume(
                    &k,
                    b,
                    g.level(&k, b)
                        .unwrap()
                        .min(Energy::from_millijoules(50))
                        .clamp_non_negative(),
                );
            }
            assert!(g.totals().conserved(), "t={s}s totals={:?}", g.totals());
        }
        g.inject(&k, g.battery(), Energy::from_joules(5)).unwrap();
        assert!(g.totals().conserved());
    }
}
