//! Quota helpers for the non-energy [`ResourceKind`]s (paper §9).
//!
//! "Since data plans are frequently offered in terms of megabyte quotas,
//! Cinder's mechanisms could be repurposed to limit application network
//! access by replacing the logical battery with a pool of network bytes.
//! Similarly, reserves could also be used to enforce SMS text message
//! quotas."
//!
//! Quotas are no longer a unit pun on a separate graph: the
//! [`crate::ResourceGraph`] owns reserves of a declared [`ResourceKind`]
//! ([`ResourceKind::Energy`], [`ResourceKind::NetworkBytes`],
//! [`ResourceKind::SmsMessages`]), created via
//! [`crate::ResourceGraph::create_root`] /
//! [`crate::ResourceGraph::create_reserve_kind`]. Taps and transfers are
//! kind-checked (cross-kind attempts fail with
//! [`crate::GraphError::KindMismatch`]), conservation holds per kind, and
//! the kernel enforces byte quotas online — a send blocks when the thread's
//! `NetworkBytes` reserve cannot cover it, observably distinct from
//! blocking on energy.
//!
//! The typed API boundary is [`Quantity`] / [`Rate`] (re-exported here from
//! [`crate::kind`]). The free functions below are the raw-grain helpers the
//! typed constructors are defined in terms of — one grain is one byte for
//! `NetworkBytes`, one thousandth of a message for `SmsMessages` — kept for
//! call sites that work with the graph's untyped (raw-amount) methods.

use cinder_sim::{Energy, Power};

pub use crate::kind::{Quantity, Rate, ResourceKind};

/// A byte quota expressed as raw grains (1 byte = 1 grain).
pub fn bytes(n: u64) -> Energy {
    Quantity::network_bytes(n).raw()
}

/// Raw grains read back as whole bytes (negative = overdrawn quota).
///
/// Exact: one grain is one byte, so no division is involved.
pub fn as_bytes(e: Energy) -> i64 {
    Quantity::new(ResourceKind::NetworkBytes, e).as_bytes()
}

/// A byte rate (bytes/second) expressed as raw grains per second.
pub fn bytes_per_sec(n: u64) -> Power {
    Rate::bytes_per_sec(n).raw()
}

/// An SMS quota expressed as raw grains (1 message = 1000 grains).
pub fn sms_messages(n: u64) -> Energy {
    Quantity::sms_messages(n).raw()
}

/// Raw grains read back as whole SMS messages, rounding toward negative
/// infinity: an overdrawn quota of −500 grains is −1 message of debt, not 0.
pub fn as_sms_messages(e: Energy) -> i64 {
    Quantity::new(ResourceKind::SmsMessages, e).as_sms_messages()
}

/// An SMS rate (messages/second) expressed as raw grains per second.
pub fn sms_per_sec(n: u64) -> Power {
    Rate::sms_per_sec(n).raw()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, GraphConfig, ResourceGraph};
    use cinder_label::Label;
    use cinder_sim::SimTime;

    #[test]
    fn byte_units_roundtrip() {
        assert_eq!(as_bytes(bytes(5_000_000)), 5_000_000);
        assert_eq!(as_sms_messages(sms_messages(100)), 100);
    }

    #[test]
    fn overdrawn_quotas_report_debt_not_zero() {
        // The old truncation-toward-zero bug: −500 grains of SMS quota
        // reported 0 messages of debt. Floor division reports −1.
        assert_eq!(as_sms_messages(Energy::from_microjoules(-500)), -1);
        assert_eq!(as_sms_messages(Energy::from_microjoules(-1_000)), -1);
        assert_eq!(as_sms_messages(Energy::from_microjoules(-1_001)), -2);
        assert_eq!(as_sms_messages(Energy::from_microjoules(999)), 0);
        // Bytes are grain-exact in both directions.
        assert_eq!(as_bytes(Energy::from_microjoules(-500)), -500);
    }

    #[test]
    fn data_plan_quota_graph() {
        // A 5 MB monthly plan: a NetworkBytes root pool, app limited to
        // 1 KB/s through a kind-checked tap.
        let mut g = ResourceGraph::with_config(
            Energy::ZERO,
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let pool = g
            .create_root(&k, "plan-pool", Quantity::network_bytes(5_000_000))
            .unwrap();
        let app = g
            .create_reserve_kind(
                &k,
                "app-bytes",
                Label::default_label(),
                ResourceKind::NetworkBytes,
            )
            .unwrap();
        g.create_tap_typed(
            &k,
            "1KBps",
            pool,
            app,
            Rate::bytes_per_sec(1_000),
            Label::default_label(),
        )
        .unwrap();
        g.flow_until(SimTime::from_secs(10));
        assert_eq!(g.level_typed(&k, app).unwrap().as_bytes(), 10_000);

        // Sending a 4 KB request consumes quota; a 100 KB one is refused.
        g.consume_typed(&k, app, Quantity::network_bytes(4_000))
            .unwrap();
        assert!(g
            .consume_typed(&k, app, Quantity::network_bytes(100_000))
            .is_err());
        assert_eq!(g.level_typed(&k, app).unwrap().as_bytes(), 6_000);
        assert!(g.totals_for(ResourceKind::NetworkBytes).conserved());
    }

    #[test]
    fn sms_quota_blocks_overrun() {
        let mut g = ResourceGraph::with_config(
            Energy::ZERO,
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let pool = g
            .create_root(&k, "sms-pool", Quantity::sms_messages(3))
            .unwrap();
        let app = g
            .create_reserve_kind(&k, "sms", Label::default_label(), ResourceKind::SmsMessages)
            .unwrap();
        g.transfer(&k, pool, app, sms_messages(3)).unwrap();
        for _ in 0..3 {
            g.consume_typed(&k, app, Quantity::sms_messages(1)).unwrap();
        }
        assert!(g.consume_typed(&k, app, Quantity::sms_messages(1)).is_err());
        assert!(g.totals_for(ResourceKind::SmsMessages).conserved());
    }
}
