//! Reserves and taps for non-energy resources (paper §9, future work).
//!
//! "Since data plans are frequently offered in terms of megabyte quotas,
//! Cinder's mechanisms could be repurposed to limit application network
//! access by replacing the logical battery with a pool of network bytes.
//! Similarly, reserves could also be used to enforce SMS text message
//! quotas."
//!
//! The [`crate::ResourceGraph`] is unit-agnostic integer arithmetic; this
//! module fixes the unit correspondences so quota graphs read naturally:
//!
//! * **network bytes** — 1 byte ↔ 1 µJ, so a rate of *n* bytes/s is
//!   `Power::from_microwatts(n)` and a 5 MB plan is an `Energy` of 5 × 10⁶.
//! * **SMS messages** — 1 message ↔ 1 mJ (a coarser grain, leaving µ-units
//!   for fractional accounting if billing ever needs it).

use cinder_sim::{Energy, Power};

/// What a reserve's integer quantity means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Microjoules of energy (the paper's primary resource).
    Energy,
    /// Network bytes against a data plan (§9).
    NetworkBytes,
    /// SMS messages against a message quota (§9).
    SmsMessages,
}

/// A byte quota expressed as a graph quantity.
pub fn bytes(n: u64) -> Energy {
    Energy::from_microjoules(n as i64)
}

/// A graph quantity read back as whole bytes (negative = overdrawn quota).
pub fn as_bytes(e: Energy) -> i64 {
    e.as_microjoules()
}

/// A byte rate (bytes/second) expressed as a tap rate.
pub fn bytes_per_sec(n: u64) -> Power {
    Power::from_microwatts(n)
}

/// An SMS quota expressed as a graph quantity.
pub fn sms_messages(n: u64) -> Energy {
    Energy::from_millijoules(n as i64)
}

/// A graph quantity read back as whole SMS messages (truncating).
pub fn as_sms_messages(e: Energy) -> i64 {
    e.as_microjoules() / 1_000
}

/// An SMS rate (messages/second) expressed as a tap rate.
pub fn sms_per_sec(n: u64) -> Power {
    Power::from_milliwatts(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, GraphConfig, ResourceGraph};
    use crate::tap::RateSpec;
    use cinder_label::Label;
    use cinder_sim::SimTime;

    #[test]
    fn byte_units_roundtrip() {
        assert_eq!(as_bytes(bytes(5_000_000)), 5_000_000);
        assert_eq!(as_sms_messages(sms_messages(100)), 100);
    }

    #[test]
    fn data_plan_quota_graph() {
        // A 5 MB monthly plan: root pool of bytes, app limited to 1 KB/s.
        let mut g = ResourceGraph::with_config(
            bytes(5_000_000),
            GraphConfig {
                decay: None, // quotas do not decay
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let app = g
            .create_reserve(&k, "app-bytes", Label::default_label())
            .unwrap();
        g.create_tap(
            &k,
            "1KBps",
            g.battery(),
            app,
            RateSpec::constant(bytes_per_sec(1_000)),
            Label::default_label(),
        )
        .unwrap();
        g.flow_until(SimTime::from_secs(10));
        assert_eq!(as_bytes(g.level(&k, app).unwrap()), 10_000);

        // Sending a 4 KB request consumes quota; a 100 KB one is refused.
        g.consume(&k, app, bytes(4_000)).unwrap();
        assert!(g.consume(&k, app, bytes(100_000)).is_err());
        assert_eq!(as_bytes(g.level(&k, app).unwrap()), 6_000);
    }

    #[test]
    fn sms_quota_blocks_overrun() {
        let mut g = ResourceGraph::with_config(
            sms_messages(3),
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let app = g.create_reserve(&k, "sms", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), app, sms_messages(3)).unwrap();
        for _ in 0..3 {
            g.consume(&k, app, sms_messages(1)).unwrap();
        }
        assert!(g.consume(&k, app, sms_messages(1)).is_err());
    }
}
