//! Global anti-hoarding decay.
//!
//! Paper §5.2.2: backward proportional taps alone cannot stop a malicious
//! thread from squirrelling energy away into fresh reserves. "Therefore, in
//! practice, Cinder prevents hoarding by imposing a global, long-term decay
//! of resources across all reserves; every reserve has an implicit
//! proportional backward tap to the battery. By default, Cinder is
//! configured to leak 50% of reserve resources after a period of 10
//! minutes." (The netd pool is exempted, §5.5.2.)

use cinder_sim::SimDuration;

/// Configuration for the global half-life decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayConfig {
    /// Fraction leaked per period: `leak_fraction` of a reserve's balance
    /// drains back to the battery every `period` (default: 0.5 per 600 s).
    pub leak_fraction: f64,
    /// The period over which `leak_fraction` leaks.
    pub period: SimDuration,
}

impl DecayConfig {
    /// The paper's default: 50% leaks every 10 minutes.
    pub fn paper_default() -> Self {
        DecayConfig {
            leak_fraction: 0.5,
            period: SimDuration::from_secs(600),
        }
    }

    /// The per-tick leak in parts per million such that compounding over
    /// `period` leaks `leak_fraction`.
    ///
    /// Solving `(1 - λ)^(period/tick) = 1 - leak_fraction` for λ.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero or the configuration is malformed.
    pub fn leak_ppm_per_tick(&self, tick: SimDuration) -> u64 {
        assert!(!tick.is_zero(), "decay tick must be positive");
        assert!(
            (0.0..1.0).contains(&self.leak_fraction),
            "leak fraction must be in [0,1): {}",
            self.leak_fraction
        );
        assert!(!self.period.is_zero(), "decay period must be positive");
        let ticks_per_period = self.period.as_secs_f64() / tick.as_secs_f64();
        let keep_per_tick = (1.0 - self.leak_fraction).powf(1.0 / ticks_per_period);
        let leak = 1.0 - keep_per_tick;
        (leak * 1e6).round() as u64
    }
}

impl Default for DecayConfig {
    fn default() -> Self {
        DecayConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let d = DecayConfig::paper_default();
        assert_eq!(d.leak_fraction, 0.5);
        assert_eq!(d.period, SimDuration::from_secs(600));
    }

    #[test]
    fn per_tick_rate_compounds_to_half_life() {
        let d = DecayConfig::paper_default();
        let tick = SimDuration::from_millis(100);
        let ppm = d.leak_ppm_per_tick(tick);
        // Compound (1 - ppm/1e6) over 6000 ticks (600 s) and check we kept
        // roughly half.
        let keep = (1.0 - ppm as f64 / 1e6).powi(6000);
        assert!((keep - 0.5).abs() < 0.01, "kept {keep}");
    }

    #[test]
    fn coarser_ticks_leak_more_per_tick() {
        let d = DecayConfig::paper_default();
        let fine = d.leak_ppm_per_tick(SimDuration::from_millis(100));
        let coarse = d.leak_ppm_per_tick(SimDuration::from_secs(10));
        assert!(coarse > fine * 50, "coarse={coarse} fine={fine}");
    }

    #[test]
    fn zero_fraction_never_leaks() {
        let d = DecayConfig {
            leak_fraction: 0.0,
            period: SimDuration::from_secs(600),
        };
        assert_eq!(d.leak_ppm_per_tick(SimDuration::from_millis(100)), 0);
    }
}
