//! Sliding-window power estimation.
//!
//! The paper's stacked accounting figures (Figs 9 and 12) plot "Cinder's CPU
//! energy accounting estimates" per process: the energy charged to each
//! principal over a trailing window, expressed as a power. [`PowerEstimator`]
//! reproduces that: consumption deltas are recorded as they are charged, and
//! `estimate` reports the windowed average (the paper's measured line is
//! "averaged over 1 second intervals").

use std::collections::VecDeque;

use cinder_sim::{Energy, Power, SimDuration, SimTime};

/// A trailing-window estimator of consumption power.
#[derive(Debug, Clone)]
pub struct PowerEstimator {
    window: SimDuration,
    events: VecDeque<(SimTime, Energy)>,
    total_in_window: Energy,
    lifetime_total: Energy,
}

impl PowerEstimator {
    /// Creates an estimator with the given trailing window (the figures use
    /// 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "estimator window must be positive");
        PowerEstimator {
            window,
            events: VecDeque::new(),
            total_in_window: Energy::ZERO,
            lifetime_total: Energy::ZERO,
        }
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records a consumption event of `amount` at time `t`.
    pub fn record(&mut self, t: SimTime, amount: Energy) {
        if amount.is_zero() {
            return;
        }
        self.events.push_back((t, amount));
        self.total_in_window += amount;
        self.lifetime_total += amount;
        self.expire(t);
    }

    /// The estimated power at time `now`: energy recorded in
    /// `(now - window, now]` divided by the window.
    pub fn estimate(&mut self, now: SimTime) -> Power {
        self.expire(now);
        self.total_in_window
            .clamp_non_negative()
            .average_power_over(self.window)
    }

    /// Total energy ever recorded.
    pub fn lifetime_total(&self) -> Energy {
        self.lifetime_total
    }

    fn expire(&mut self, now: SimTime) {
        // Events at or before `now - window` fall out (half-open window).
        while let Some(&(t, amount)) = self.events.front() {
            if t.as_micros() + self.window.as_micros() <= now.as_micros() {
                self.events.pop_front();
                self.total_in_window -= amount;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> PowerEstimator {
        PowerEstimator::new(SimDuration::from_secs(1))
    }

    #[test]
    fn steady_charging_estimates_true_power() {
        // 1.37 mJ every 10 ms = 137 mW, the paper's CPU power.
        let mut e = est();
        for i in 0..200 {
            e.record(
                SimTime::from_millis(10 * i),
                Energy::from_microjoules(1_370),
            );
        }
        let p = e.estimate(SimTime::from_millis(1_999));
        let mw = p.as_milliwatts_f64();
        assert!((mw - 137.0).abs() < 2.0, "estimate {mw} mW");
    }

    #[test]
    fn estimate_decays_to_zero_after_idle() {
        let mut e = est();
        e.record(SimTime::ZERO, Energy::from_millijoules(100));
        assert!(e.estimate(SimTime::from_millis(500)).as_microwatts() > 0);
        assert_eq!(e.estimate(SimTime::from_secs(2)), Power::ZERO);
        assert_eq!(e.lifetime_total(), Energy::from_millijoules(100));
    }

    #[test]
    fn window_boundary_is_half_open() {
        let mut e = est();
        e.record(SimTime::ZERO, Energy::from_millijoules(1));
        // At exactly t = window the event has aged out.
        assert_eq!(e.estimate(SimTime::from_secs(1)), Power::ZERO);
    }

    #[test]
    fn burst_shows_then_fades() {
        let mut e = est();
        e.record(SimTime::from_secs(10), Energy::from_millijoules(137));
        let during = e.estimate(SimTime::from_millis(10_500));
        assert_eq!(during, Power::from_milliwatts(137));
        let after = e.estimate(SimTime::from_millis(11_001));
        assert_eq!(after, Power::ZERO);
    }

    #[test]
    fn zero_amounts_are_ignored() {
        let mut e = est();
        e.record(SimTime::ZERO, Energy::ZERO);
        assert_eq!(e.lifetime_total(), Energy::ZERO);
        assert_eq!(e.estimate(SimTime::ZERO), Power::ZERO);
    }
}
