//! The resource-aware CPU scheduler.
//!
//! Paper §3.2: "Cinder's CPU scheduler is energy-aware and allows a thread
//! to run only when at least one of its energy reserves is not empty.
//! Threads that have depleted their energy reserves cannot run. Tying energy
//! reserves to the scheduler prevents new spending, which is sufficient to
//! throttle energy consumption."
//!
//! The scheduler is round-robin over *ready* tasks whose **active reserve**
//! is non-empty (the single-active-reserve model of the paper's own API,
//! `self_set_active_reserve`, Fig 5). Each scheduled quantum charges
//! `cpu_power × quantum` to the task's active reserve; because charging
//! happens at quantum granularity a task can overdraw by at most one
//! quantum, which the paper's own batch accounting also permits.
//!
//! # Per-kind reserve sets
//!
//! Each task carries one active reserve *per* [`ResourceKind`] (§9): the
//! Energy slot is mandatory and gates the CPU — a quantum of compute
//! consumes energy, so [`ResourceScheduler::pick_next`] refuses tasks whose
//! energy reserve is empty. Quota kinds gate at the syscall whose next step
//! consumes them: the kernel blocks a send when the thread's
//! `NetworkBytes` reserve cannot cover it, leaving the thread runnable for
//! compute but blocked-on-bytes at the send — observably distinct (a
//! `Blocked` state plus byte-block telemetry) from the empty-energy
//! throttling counted in [`ResourceScheduler::throttled_quanta`].
//!
//! This type is deliberately kernel-agnostic: the simulated kernel drives it
//! (pick → run the thread's program → charge), and the figure experiments
//! read the per-task [`PowerEstimator`]s to draw their stacked plots.

use std::collections::VecDeque;

use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::accounting::PowerEstimator;
use crate::arena::{Arena, RawId};
use crate::errors::GraphError;
#[cfg(test)]
use crate::graph::Actor;
use crate::graph::{ReserveId, ResourceGraph};
use crate::kind::ResourceKind;

/// Identifies a task known to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(RawId);

impl TaskId {
    /// The task's dense slot index, stable for its lifetime (slots may be
    /// reused after [`ResourceScheduler::remove_task`]). The kernel keys
    /// its slab-indexed task→thread table on this instead of hashing ids
    /// in the run loop.
    pub fn index(self) -> usize {
        self.0.index() as usize
    }
}

/// Scheduler-visible task state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Wants the CPU.
    Ready,
    /// Waiting on a sleep, I/O, or netd block; not schedulable.
    Blocked,
    /// Finished; never schedulable again.
    Exited,
}

#[derive(Debug)]
struct Task {
    name: String,
    /// One active reserve per resource kind; the Energy slot is always
    /// populated (compute is gated on it), quota slots are optional.
    reserves: [Option<ReserveId>; ResourceKind::COUNT],
    state: TaskState,
    consumed: Energy,
    estimator: PowerEstimator,
    /// Quanta during which this task was denied the CPU *solely* because its
    /// reserve was empty — the throttling the paper's isolation experiments
    /// rely on.
    throttled_quanta: u64,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Scheduling quantum (default 10 ms).
    pub quantum: SimDuration,
    /// Trailing window for per-task power estimates (the figures use 1 s).
    pub estimate_window: SimDuration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: SimDuration::from_millis(10),
            estimate_window: SimDuration::from_secs(1),
        }
    }
}

/// Round-robin, reserve-gated scheduler over typed per-kind reserve sets.
#[derive(Debug)]
pub struct ResourceScheduler {
    tasks: Arena<Task>,
    queue: VecDeque<TaskId>,
    config: SchedulerConfig,
    /// Tasks currently in [`TaskState::Ready`], maintained on every state
    /// transition so [`ResourceScheduler::has_ready`] — the kernel's
    /// idle-skip guard — and the all-idle [`ResourceScheduler::pick_next`]
    /// are O(1) instead of scans.
    ready_count: usize,
    /// When exactly one task is Ready *and* it is known which, that task —
    /// the steady state of a device running one busy thread, where
    /// [`ResourceScheduler::pick_next`] can skip the queue rotation
    /// entirely. `None` means unknown (the next full scan re-learns it);
    /// re-derived on every transition that invalidates it.
    sole_ready: Option<TaskId>,
    /// Memoised `power × quantum` for [`ResourceScheduler::charge`].
    quantum_cost: Option<(Power, Energy)>,
}

/// The scheduler's pre-multi-resource name, kept so existing call sites
/// keep compiling.
#[deprecated(note = "renamed to ResourceScheduler (reserves are now typed per ResourceKind)")]
pub type EnergyScheduler = ResourceScheduler;

impl ResourceScheduler {
    /// Creates an empty scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        ResourceScheduler {
            tasks: Arena::new(),
            queue: VecDeque::new(),
            config,
            ready_count: 0,
            sole_ready: None,
            quantum_cost: None,
        }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> SimDuration {
        self.config.quantum
    }

    /// Registers a task drawing energy from `reserve`, initially
    /// [`TaskState::Ready`]. Quota-kind reserves attach afterwards via
    /// [`ResourceScheduler::set_reserve_for`].
    pub fn add_task(&mut self, name: &str, reserve: ReserveId) -> TaskId {
        let mut reserves = [None; ResourceKind::COUNT];
        reserves[ResourceKind::Energy.index()] = Some(reserve);
        let id = TaskId(self.tasks.insert(Task {
            name: name.to_string(),
            reserves,
            state: TaskState::Ready,
            consumed: Energy::ZERO,
            estimator: PowerEstimator::new(self.config.estimate_window),
            throttled_quanta: 0,
        }));
        self.queue.push_back(id);
        self.ready_count += 1;
        self.sole_ready = if self.ready_count == 1 {
            Some(id)
        } else {
            None
        };
        id
    }

    /// Removes a task entirely.
    pub fn remove_task(&mut self, id: TaskId) {
        if let Some(task) = self.tasks.remove(id.0) {
            if task.state == TaskState::Ready {
                self.ready_count -= 1;
            }
        }
        self.sole_ready = None;
        self.queue.retain(|&t| t != id);
    }

    /// The task's display name.
    pub fn name(&self, id: TaskId) -> Option<&str> {
        self.tasks.get(id.0).map(|t| t.name.as_str())
    }

    /// The task's current state.
    pub fn state(&self, id: TaskId) -> Option<TaskState> {
        self.tasks.get(id.0).map(|t| t.state)
    }

    /// Changes a task's state (kernel: block on sleep/IO, wake, exit).
    pub fn set_state(&mut self, id: TaskId, state: TaskState) {
        if let Some(t) = self.tasks.get_mut(id.0) {
            if t.state == TaskState::Ready && state != TaskState::Ready {
                self.ready_count -= 1;
                // One task may remain Ready, but which one is unknown
                // here; the next full pick re-learns it.
                self.sole_ready = None;
            } else if t.state != TaskState::Ready && state == TaskState::Ready {
                self.ready_count += 1;
                self.sole_ready = if self.ready_count == 1 {
                    Some(id)
                } else {
                    None
                };
            }
            t.state = state;
        }
    }

    /// The task's active energy reserve (the kind the CPU gate checks).
    pub fn active_reserve(&self, id: TaskId) -> Option<ReserveId> {
        self.reserve_for(id, ResourceKind::Energy)
    }

    /// Switches the task's active energy reserve — the
    /// `self_set_active_reserve` system call of Fig 5.
    pub fn set_active_reserve(&mut self, id: TaskId, reserve: ReserveId) {
        self.set_reserve_for(id, ResourceKind::Energy, reserve);
    }

    /// The task's active reserve for a kind, if one is attached.
    pub fn reserve_for(&self, id: TaskId, kind: ResourceKind) -> Option<ReserveId> {
        self.tasks.get(id.0).and_then(|t| t.reserves[kind.index()])
    }

    /// Attaches (or switches) the task's active reserve for a kind — the
    /// typed generalisation of `self_set_active_reserve`. A task with a
    /// `NetworkBytes` reserve is byte-gated at its sends; one without is
    /// quota-unrestricted.
    pub fn set_reserve_for(&mut self, id: TaskId, kind: ResourceKind, reserve: ReserveId) {
        if let Some(t) = self.tasks.get_mut(id.0) {
            t.reserves[kind.index()] = Some(reserve);
        }
    }

    /// Picks the next runnable task: round-robin over ready tasks whose
    /// active **energy** reserve is non-empty — the kind a quantum of
    /// compute consumes. (Quota kinds gate at the consuming syscall: a
    /// byte-blocked sender is `Blocked`, not merely skipped.) Returns
    /// `None` when the CPU should idle this quantum.
    pub fn pick_next(&mut self, graph: &ResourceGraph) -> Option<TaskId> {
        if self.ready_count == 0 {
            // Nobody wants the CPU: skip the queue rotation entirely. No
            // throttled quantum can accrue (only Ready tasks are counted),
            // so this is observably identical to the scan.
            return None;
        }
        if let Some(id) = self.sole_ready {
            // Exactly one Ready task and it is known: the rotation would
            // rediscover it (or throttle it) — do that directly. The
            // no-pick outcome leaves the queue bit-identically unchanged;
            // the picked outcome only differs in internal queue order,
            // which round-robin leaves unspecified.
            let runnable = self
                .tasks
                .get(id.0)
                .and_then(|t| t.reserves[ResourceKind::Energy.index()])
                .and_then(|r| graph.reserve(r))
                .is_some_and(|r| r.is_nonempty());
            if runnable {
                return Some(id);
            }
            if let Some(t) = self.tasks.get_mut(id.0) {
                t.throttled_quanta += 1;
            }
            return None;
        }
        let n = self.queue.len();
        let mut skipped: Vec<TaskId> = Vec::new();
        let mut throttled: Vec<TaskId> = Vec::new();
        let mut picked = None;
        for _ in 0..n {
            let Some(id) = self.queue.pop_front() else {
                break;
            };
            let Some(task) = self.tasks.get(id.0) else {
                continue; // removed task: drop from queue permanently
            };
            if task.state == TaskState::Exited {
                continue; // exited is terminal: drop from queue
            }
            if task.state == TaskState::Ready {
                let runnable = task.reserves[ResourceKind::Energy.index()]
                    .and_then(|r| graph.reserve(r))
                    .is_some_and(|r| r.is_nonempty());
                if runnable {
                    // The chosen task goes to the back; everyone examined
                    // and skipped keeps their position at the front.
                    picked = Some(id);
                    self.queue.push_back(id);
                    break;
                }
                throttled.push(id);
            }
            skipped.push(id);
        }
        for id in skipped.into_iter().rev() {
            self.queue.push_front(id);
        }
        // Re-learn the sole Ready task for the fast path above: either the
        // one we picked, or the single one the scan throttled.
        if self.ready_count == 1 {
            self.sole_ready = picked.or_else(|| {
                if throttled.len() == 1 {
                    Some(throttled[0])
                } else {
                    None
                }
            });
        }
        // Tasks that wanted to run but were reserve-gated count a throttled
        // quantum — the paper's isolation experiments hinge on this.
        for id in throttled {
            if let Some(t) = self.tasks.get_mut(id.0) {
                t.throttled_quanta += 1;
            }
        }
        picked
    }

    /// Replays `quanta` consecutive [`ResourceScheduler::pick_next`] calls
    /// in bulk for a span in which nothing can change: every Ready task
    /// stays reserve-gated (no balance moves) and no state transition
    /// occurs. Each such call adds one throttled quantum to every Ready
    /// task and returns the queue to its entry order, so the whole span
    /// collapses to a counter add per Ready task.
    ///
    /// Caller-checked precondition: the immediately preceding `pick_next`
    /// returned `None`, so the queue holds no stale (removed or exited)
    /// entries, `sole_ready` is at its scan fixed point, and every Ready
    /// task is unfundable — the kernel's frozen fast-forward establishes
    /// this by construction (debug-asserted here).
    pub fn bulk_throttle(&mut self, graph: &ResourceGraph, quanta: u64) {
        if quanta == 0 || self.ready_count == 0 {
            return;
        }
        if let Some(id) = self.sole_ready {
            debug_assert!(
                !self
                    .tasks
                    .get(id.0)
                    .and_then(|t| t.reserves[ResourceKind::Energy.index()])
                    .and_then(|r| graph.reserve(r))
                    .is_some_and(|r| r.is_nonempty()),
                "bulk_throttle on a fundable sole-ready task"
            );
            if let Some(t) = self.tasks.get_mut(id.0) {
                t.throttled_quanta += quanta;
            }
            return;
        }
        for i in 0..self.queue.len() {
            let id = self.queue[i];
            let Some(task) = self.tasks.get_mut(id.0) else {
                debug_assert!(false, "bulk_throttle saw a stale queue entry");
                continue;
            };
            if task.state != TaskState::Ready {
                continue;
            }
            task.throttled_quanta += quanta;
            debug_assert!(
                !task.reserves[ResourceKind::Energy.index()]
                    .and_then(|r| graph.reserve(r))
                    .is_some_and(|r| r.is_nonempty()),
                "bulk_throttle on a fundable ready task"
            );
        }
    }

    /// Charges `power × quantum` to the task's active reserve and records it
    /// in the task's accounting.
    ///
    /// The charge may overdraw the reserve by up to one quantum (the task
    /// was runnable when picked); the resulting debt gates future runs.
    /// The cost is memoised per power level: the kernel charges the same
    /// accounting power every run quantum, and the µJ conversion is hot.
    pub fn charge(
        &mut self,
        graph: &mut ResourceGraph,
        id: TaskId,
        now: SimTime,
        power: Power,
    ) -> Result<Energy, GraphError> {
        let cost = match self.quantum_cost {
            Some((p, cost)) if p == power => cost,
            _ => {
                let cost = power.energy_over(self.config.quantum);
                self.quantum_cost = Some((power, cost));
                cost
            }
        };
        self.charge_cost(graph, id, now, cost)
    }

    /// Charges `power × duration` — for partial-quantum costs such as the
    /// dispatch of a program step that immediately blocks.
    pub fn charge_duration(
        &mut self,
        graph: &mut ResourceGraph,
        id: TaskId,
        now: SimTime,
        power: Power,
        duration: SimDuration,
    ) -> Result<Energy, GraphError> {
        self.charge_cost(graph, id, now, power.energy_over(duration))
    }

    fn charge_cost(
        &mut self,
        graph: &mut ResourceGraph,
        id: TaskId,
        now: SimTime,
        cost: Energy,
    ) -> Result<Energy, GraphError> {
        let task = self
            .tasks
            .get_mut(id.0)
            .ok_or(GraphError::ReserveNotFound)?;
        let reserve =
            task.reserves[ResourceKind::Energy.index()].ok_or(GraphError::ReserveNotFound)?;
        // The scheduler is kernel machinery: charge through the single-probe
        // kernel path rather than the label-checked syscall surface.
        graph.consume_with_debt_kernel(reserve, cost)?;
        task.consumed += cost;
        task.estimator.record(now, cost);
        Ok(cost)
    }

    /// The task's windowed power estimate at `now` (the figures' y-axis).
    pub fn estimate(&mut self, id: TaskId, now: SimTime) -> Power {
        self.tasks
            .get_mut(id.0)
            .map(|t| t.estimator.estimate(now))
            .unwrap_or(Power::ZERO)
    }

    /// Total energy ever charged to the task.
    pub fn consumed(&self, id: TaskId) -> Energy {
        self.tasks
            .get(id.0)
            .map(|t| t.consumed)
            .unwrap_or(Energy::ZERO)
    }

    /// Quanta the task was denied because its reserve was empty.
    pub fn throttled_quanta(&self, id: TaskId) -> u64 {
        self.tasks
            .get(id.0)
            .map(|t| t.throttled_quanta)
            .unwrap_or(0)
    }

    /// Whether any task is in [`TaskState::Ready`], runnable or not — O(1)
    /// off the maintained ready counter.
    ///
    /// The kernel's idle fast-forward keys off this: a Ready task whose
    /// reserve is empty may become runnable the moment a tap refills it, so
    /// quanta cannot be skipped while one exists, whereas Blocked tasks can
    /// only be revived by a queued wake event.
    pub fn has_ready(&self) -> bool {
        self.ready_count > 0
    }

    /// True when some Ready task could run right now — its energy reserve
    /// is non-empty. Read-only (no throttle accounting, no queue rotation):
    /// the kernel's steadiness probe asks this without perturbing the
    /// round-robin state that [`ResourceScheduler::pick_next`] owns.
    pub fn any_ready_runnable(&self, graph: &ResourceGraph) -> bool {
        if self.ready_count == 0 {
            return false;
        }
        self.tasks.iter().any(|(_, t)| {
            t.state == TaskState::Ready
                && t.reserves[ResourceKind::Energy.index()]
                    .and_then(|r| graph.reserve(r))
                    .is_some_and(|r| r.is_nonempty())
        })
    }

    /// All task ids, in creation order.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.tasks.iter().map(|(id, _)| TaskId(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use crate::tap::RateSpec;
    use cinder_label::Label;
    use cinder_sim::Energy;

    const CPU: Power = Power::from_milliwatts(137);

    fn setup() -> (ResourceGraph, ResourceScheduler) {
        let g = ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let s = ResourceScheduler::new(SchedulerConfig::default());
        (g, s)
    }

    /// Runs the classic kernel loop shape for `secs` seconds, returning the
    /// fraction of quanta each task ran.
    fn run(
        g: &mut ResourceGraph,
        s: &mut ResourceScheduler,
        tasks: &[TaskId],
        secs: u64,
    ) -> Vec<f64> {
        let quantum = s.quantum();
        let total = SimDuration::from_secs(secs).div_duration(quantum);
        let mut counts = vec![0u64; tasks.len()];
        let mut now = SimTime::ZERO;
        for _ in 0..total {
            g.flow_until(now);
            if let Some(picked) = s.pick_next(g) {
                s.charge(g, picked, now, CPU).unwrap();
                if let Some(i) = tasks.iter().position(|&t| t == picked) {
                    counts[i] += 1;
                }
            }
            now += quantum;
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    #[test]
    fn empty_reserve_blocks_running() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        let t = s.add_task("starved", r);
        assert_eq!(s.pick_next(&g), None);
        assert!(s.throttled_quanta(t) > 0);
        // Fund it and it becomes runnable.
        g.transfer(&k, g.battery(), r, Energy::from_joules(1))
            .unwrap();
        assert_eq!(s.pick_next(&g), Some(t));
    }

    #[test]
    fn blocked_tasks_are_skipped() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(1))
            .unwrap();
        let t = s.add_task("sleeper", r);
        s.set_state(t, TaskState::Blocked);
        assert_eq!(s.pick_next(&g), None);
        s.set_state(t, TaskState::Ready);
        assert_eq!(s.pick_next(&g), Some(t));
    }

    #[test]
    fn round_robin_is_fair_with_ample_energy() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let mut ids = Vec::new();
        for name in ["a", "b", "c"] {
            let r = g.create_reserve(&k, name, Label::default_label()).unwrap();
            g.transfer(&k, g.battery(), r, Energy::from_joules(1000))
                .unwrap();
            ids.push(s.add_task(name, r));
        }
        let shares = run(&mut g, &mut s, &ids, 3);
        for (i, share) in shares.iter().enumerate() {
            assert!((share - 1.0 / 3.0).abs() < 0.01, "task {i} share {share}");
        }
    }

    #[test]
    fn tap_rate_dictates_cpu_share() {
        // Fig 9's setup: a task fed 68.5 mW runs the 137 mW CPU ~50%.
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g
            .create_reserve(&k, "half", Label::default_label())
            .unwrap();
        g.create_tap(
            &k,
            "tap",
            g.battery(),
            r,
            RateSpec::constant(Power::from_microwatts(68_500)),
            Label::default_label(),
        )
        .unwrap();
        let t = s.add_task("spinner", r);
        let shares = run(&mut g, &mut s, &[t], 20);
        assert!(
            (shares[0] - 0.5).abs() < 0.03,
            "expected ~50% duty cycle, got {}",
            shares[0]
        );
    }

    #[test]
    fn estimator_tracks_cpu_power() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g
            .create_reserve(&k, "full", Label::default_label())
            .unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(100))
            .unwrap();
        let t = s.add_task("spinner", r);
        run(&mut g, &mut s, &[t], 2);
        let est = s.estimate(t, SimTime::from_secs(2)).as_milliwatts_f64();
        assert!((est - 137.0).abs() < 3.0, "estimate {est} mW");
    }

    #[test]
    fn consumed_matches_graph_accounting() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(10))
            .unwrap();
        let t = s.add_task("spinner", r);
        run(&mut g, &mut s, &[t], 1);
        assert_eq!(s.consumed(t), g.reserve(r).unwrap().stats().consumed);
        assert!(g.totals().conserved());
    }

    #[test]
    fn isolation_two_tasks_one_starving() {
        // A funded task is unaffected by a starving competitor.
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let ra = g.create_reserve(&k, "ra", Label::default_label()).unwrap();
        let rb = g.create_reserve(&k, "rb", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), ra, Energy::from_joules(1000))
            .unwrap();
        // rb gets nothing.
        let ta = s.add_task("funded", ra);
        let tb = s.add_task("starved", rb);
        let shares = run(&mut g, &mut s, &[ta, tb], 2);
        assert!(shares[0] > 0.99, "funded task should own the CPU");
        assert_eq!(shares[1], 0.0);
    }

    #[test]
    fn set_active_reserve_switches_billing() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r1 = g.create_reserve(&k, "r1", Label::default_label()).unwrap();
        let r2 = g.create_reserve(&k, "r2", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r1, Energy::from_joules(1))
            .unwrap();
        g.transfer(&k, g.battery(), r2, Energy::from_joules(1))
            .unwrap();
        let t = s.add_task("mover", r1);
        s.charge(&mut g, t, SimTime::ZERO, CPU).unwrap();
        s.set_active_reserve(t, r2);
        s.charge(&mut g, t, SimTime::from_millis(10), CPU).unwrap();
        let c1 = g.reserve(r1).unwrap().stats().consumed;
        let c2 = g.reserve(r2).unwrap().stats().consumed;
        assert_eq!(c1, c2);
        assert_eq!(c1, Energy::from_microjoules(1_370));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_names_the_scheduler() {
        // The pre-rename name must keep resolving for downstream code, but
        // internal code constructs the scheduler by its real name — the
        // alias appears only as this compile-time identity proof.
        fn accepts_alias(_: &EnergyScheduler) {}
        let s: ResourceScheduler = ResourceScheduler::new(SchedulerConfig::default());
        accepts_alias(&s);
        assert_eq!(s.quantum(), SchedulerConfig::default().quantum);
    }

    #[test]
    fn per_kind_reserve_set_starts_energy_only() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let energy = g.create_reserve(&k, "e", Label::default_label()).unwrap();
        let pool = g
            .create_root(
                &k,
                "bytes-pool",
                crate::kind::Quantity::network_bytes(1_000),
            )
            .unwrap();
        let t = s.add_task("t", energy);
        assert_eq!(s.reserve_for(t, ResourceKind::Energy), Some(energy));
        assert_eq!(s.reserve_for(t, ResourceKind::NetworkBytes), None);
        assert_eq!(s.reserve_for(t, ResourceKind::SmsMessages), None);
        s.set_reserve_for(t, ResourceKind::NetworkBytes, pool);
        assert_eq!(s.reserve_for(t, ResourceKind::NetworkBytes), Some(pool));
        // The energy slot is untouched by quota attachments.
        assert_eq!(s.active_reserve(t), Some(energy));
    }

    #[test]
    fn empty_byte_reserve_does_not_gate_compute() {
        // The scheduler gate is the kind compute consumes: a task whose
        // byte reserve is empty but whose energy reserve is full runs.
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let energy = g.create_reserve(&k, "e", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), energy, Energy::from_joules(1))
            .unwrap();
        g.create_root(&k, "bytes-pool", crate::kind::Quantity::network_bytes(0))
            .unwrap();
        let empty_bytes = g
            .create_reserve_kind(
                &k,
                "no-bytes",
                Label::default_label(),
                ResourceKind::NetworkBytes,
            )
            .unwrap();
        let t = s.add_task("t", energy);
        s.set_reserve_for(t, ResourceKind::NetworkBytes, empty_bytes);
        assert_eq!(s.pick_next(&g), Some(t));
        assert_eq!(s.throttled_quanta(t), 0);
    }

    #[test]
    fn removed_tasks_leave_queue() {
        let (mut g, mut s) = setup();
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(1))
            .unwrap();
        let t = s.add_task("gone", r);
        s.remove_task(t);
        assert_eq!(s.pick_next(&g), None);
        assert_eq!(s.state(t), None);
    }
}
