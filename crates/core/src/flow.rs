//! The `FlowEngine`: indexed, allocation-free batch tap execution with
//! closed-form fast-forward.
//!
//! The paper notes that tap transfers "are executed in batch periodically to
//! minimize scheduling and context-switch overheads" (§3.3). The original
//! `flow_one_tick` honoured the batching but not the *minimize*: every tick
//! it allocated a fresh `BTreeMap` snapshot of **all** reserve levels and a
//! `Vec` of **all** tap ids, making `flow_until(1 hour)` cost
//! O(ticks × (R + T) log R) with two heap allocations per tick. This module
//! replaces that loop while preserving its semantics bit-for-bit (asserted
//! by the differential property tests below against the naive reference
//! model, [`crate::ResourceGraph::flow_until_reference`]):
//!
//! * **Per-source adjacency index** — tap lists keyed by source reserve, in
//!   tap-creation order, maintained incrementally by
//!   [`crate::ResourceGraph::create_tap`] / `delete_tap` / `set_tap_rate` /
//!   `delete_reserve`. A global creation-order list drives application, so
//!   the documented oversubscription rule (earlier-created taps win) is
//!   unchanged.
//! * **Reusable scratch snapshot** — start-of-tick levels are recorded only
//!   for sources that feed a live proportional tap (constant taps never read
//!   the snapshot), into an epoch-stamped buffer that is reused across
//!   ticks: zero steady-state allocation.
//! * **Quiescent-source skipping** — a proportional tap whose source
//!   snapshot is non-positive moves nothing and leaves its carry untouched,
//!   so it is skipped without computing a transfer.
//! * **Closed-form fast-forward** — when no proportional tap is live and
//!   decay is off, a run of `n` ticks is linear provided no source can be
//!   clamped mid-run. The engine proves a safe `n` from per-source outflow
//!   bounds and applies all `n` ticks in O(R_sources + T), turning hour-long
//!   `flow_until` calls into work proportional to graph *events* (rate
//!   changes, tap churn, sources running dry) instead of tick count.
//!
//! The engine lives inside [`crate::ResourceGraph`]; it has no public
//! surface of its own.

use std::collections::{BTreeMap, HashMap};

use cinder_sim::{Energy, SimDuration};

use crate::arena::{Arena, RawId};
use crate::graph::TapId;
use crate::reserve::Reserve;
use crate::tap::{RateSpec, Tap};

/// Per-source slice of the adjacency index.
#[derive(Debug, Default)]
struct SourceTaps {
    /// This source's outgoing taps, keyed by creation sequence — iteration
    /// is creation order, removal is O(log n) (reserve GC can revoke many
    /// taps at once, e.g. a browser page's container being unlinked).
    taps: BTreeMap<u64, TapId>,
    /// How many of them are proportional with a nonzero rate.
    live_prop: usize,
}

/// What the fast-forward pass decided about one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceRun {
    /// Balance provably covers the whole run: transfers apply unclamped.
    Covered,
    /// Non-positive balance and no inflow: every transfer clamps to zero,
    /// only tap carries advance.
    Starved,
}

/// Indexed batch-flow executor. See the module docs for the design.
pub(crate) struct FlowEngine {
    /// All live taps keyed by creation sequence ([`Tap::seq`]) — iteration
    /// is the application order that defines oversubscription priority,
    /// and removal is O(log n).
    order: BTreeMap<u64, TapId>,
    /// Tap lists keyed by source reserve.
    by_source: HashMap<RawId, SourceTaps>,
    /// Total live proportional (nonzero-rate) taps; fast-forward is only
    /// legal at zero.
    live_prop: usize,
    /// Scratch: start-of-tick level per reserve slot, valid when the
    /// matching `snapshot_epoch` entry equals `epoch`.
    snapshot: Vec<Energy>,
    snapshot_epoch: Vec<u32>,
    epoch: u32,
    /// Scratch for fast-forward planning, reused across calls.
    run_plan: HashMap<RawId, SourceRun>,
}

fn is_live_prop(rate: RateSpec) -> bool {
    matches!(rate, RateSpec::Proportional { ppm_per_s } if ppm_per_s > 0)
}

impl FlowEngine {
    pub(crate) fn new() -> Self {
        FlowEngine {
            order: BTreeMap::new(),
            by_source: HashMap::new(),
            live_prop: 0,
            snapshot: Vec::new(),
            snapshot_epoch: Vec::new(),
            epoch: 0,
            run_plan: HashMap::new(),
        }
    }

    // ----- index maintenance (called by ResourceGraph mutators) ----------

    /// Registers a newly created tap.
    pub(crate) fn on_tap_created(&mut self, id: TapId, seq: u64, source: RawId, rate: RateSpec) {
        self.order.insert(seq, id);
        let entry = self.by_source.entry(source).or_default();
        entry.taps.insert(seq, id);
        if is_live_prop(rate) {
            entry.live_prop += 1;
            self.live_prop += 1;
        }
    }

    /// Unregisters a tap about to be (or just) removed.
    pub(crate) fn on_tap_removed(&mut self, seq: u64, source: RawId, rate: RateSpec) {
        self.order.remove(&seq);
        if let Some(entry) = self.by_source.get_mut(&source) {
            entry.taps.remove(&seq);
            if is_live_prop(rate) {
                entry.live_prop -= 1;
                self.live_prop -= 1;
            }
            if entry.taps.is_empty() {
                self.by_source.remove(&source);
            }
        }
    }

    /// Updates prop/const classification when a tap's rate changes.
    pub(crate) fn on_tap_rate_changed(&mut self, source: RawId, old: RateSpec, new: RateSpec) {
        let (was, is) = (is_live_prop(old), is_live_prop(new));
        if was == is {
            return;
        }
        let entry = self
            .by_source
            .get_mut(&source)
            .expect("rate change on unindexed tap");
        if is {
            entry.live_prop += 1;
            self.live_prop += 1;
        } else {
            entry.live_prop -= 1;
            self.live_prop -= 1;
        }
    }

    /// True when the all-`Const` precondition for fast-forward holds.
    pub(crate) fn all_const(&self) -> bool {
        self.live_prop == 0
    }

    #[cfg(test)]
    pub(crate) fn index_len(&self) -> (usize, usize) {
        (self.order.len(), self.by_source.len())
    }

    // ----- per-tick execution ---------------------------------------------

    /// Runs one batch tick: taps in creation order against a start-of-tick
    /// snapshot, then the global decay. Semantically identical to the naive
    /// reference loop, without its per-tick allocations.
    pub(crate) fn tick(
        &mut self,
        reserves: &mut Arena<Reserve>,
        taps: &mut Arena<Tap>,
        battery: RawId,
        decay_ppm_per_tick: u64,
        dt: SimDuration,
    ) {
        // Snapshot start-of-tick levels — but only for sources feeding a
        // live proportional tap; constant taps never read the snapshot.
        self.epoch = self.epoch.wrapping_add(1);
        if self.live_prop > 0 {
            for (&source, entry) in &self.by_source {
                if entry.live_prop == 0 {
                    continue;
                }
                let Some(r) = reserves.get(source) else {
                    continue;
                };
                let slot = source.index() as usize;
                if slot >= self.snapshot.len() {
                    self.snapshot.resize(slot + 1, Energy::ZERO);
                    self.snapshot_epoch.resize(slot + 1, 0);
                }
                self.snapshot[slot] = r.balance();
                self.snapshot_epoch[slot] = self.epoch;
            }
        }
        for &tid in self.order.values() {
            let tap = taps.get_mut(tid.0).expect("flow index out of sync");
            let source = tap.source();
            let sink = tap.sink();
            let desired = match tap.rate() {
                RateSpec::Const(_) => tap.desired_transfer(Energy::ZERO, dt),
                RateSpec::Proportional { .. } => {
                    let slot = source.0.index() as usize;
                    let level = match self.snapshot_epoch.get(slot) {
                        Some(&e) if e == self.epoch => self.snapshot[slot],
                        _ => Energy::ZERO,
                    };
                    if !level.is_positive() {
                        // Quiescent source: the transfer is zero and the
                        // carry is untouched — skip the arithmetic.
                        continue;
                    }
                    tap.desired_transfer(level, dt)
                }
            };
            if desired.is_zero() {
                continue;
            }
            let Some(src) = reserves.get(source.0) else {
                continue;
            };
            let amount = desired.min(src.balance().clamp_non_negative());
            if amount.is_zero() {
                continue;
            }
            reserves
                .get_mut(source.0)
                .expect("source checked above")
                .debit_outflow(amount);
            reserves
                .get_mut(sink.0)
                .expect("taps to dead sinks are GC'd")
                .credit(amount);
        }
        decay_tick(reserves, battery, decay_ppm_per_tick);
    }

    // ----- closed-form fast-forward --------------------------------------

    /// Attempts to advance up to `max_ticks` ticks in closed form, returning
    /// how many were applied (0 means: run one tick the slow way).
    ///
    /// Preconditions checked by the caller: decay disabled. Preconditions
    /// checked here: no live proportional tap, and every source with
    /// outgoing constant flow is either *covered* (balance ≥ n × an upper
    /// bound of its per-tick outflow, so no clamp can engage) or *starved*
    /// (non-positive balance with no inflow at all, so every clamp yields
    /// zero). Within such a run the per-tick loop is linear and telescopes
    /// exactly — see [`Tap::bulk_advance_const`].
    pub(crate) fn try_fast_forward(
        &mut self,
        reserves: &mut Arena<Reserve>,
        taps: &mut Arena<Tap>,
        dt: SimDuration,
        max_ticks: u64,
    ) -> u64 {
        debug_assert!(max_ticks > 0);
        if self.live_prop > 0 {
            return 0;
        }
        if self.order.is_empty() {
            // No taps at all: nothing moves, whole span is one event.
            return max_ticks;
        }
        let dt_us = dt.as_micros() as u128;

        // Plan the run: per-source outflow bounds and the Covered/Starved
        // classification. `run_plan` is reused scratch; the sink set is
        // built lazily, only if a starved source shows up.
        self.run_plan.clear();
        let mut sinks: Option<std::collections::HashSet<RawId>> = None;
        let mut n = max_ticks;
        for (&source, entry) in &self.by_source {
            // Upper bound of this source's per-tick outflow in µJ: each
            // const tap moves at most ⌊(p·dt + carry)/1e6⌋ ≤ ⌊(p·dt +
            // 999_999)/1e6⌋ per tick.
            let mut bound_uj: u128 = 0;
            for &tid in entry.taps.values() {
                let tap = taps.get(tid.0).expect("flow index out of sync");
                if let RateSpec::Const(p) = tap.rate() {
                    bound_uj += (p.as_microwatts() as u128 * dt_us).div_ceil(1_000_000);
                }
            }
            if bound_uj == 0 {
                // Only zero-rate taps: inert, no constraint either way.
                continue;
            }
            let balance = match reserves.get(source) {
                Some(r) => r.balance(),
                None => continue,
            };
            if balance.is_positive() {
                let n_src = (balance.as_microjoules() as u128 / bound_uj) as u64;
                if n_src == 0 {
                    return 0; // close to the clamp boundary: tick it out
                }
                n = n.min(n_src);
                self.run_plan.insert(source, SourceRun::Covered);
            } else {
                // Empty (or indebted) source: only safe to skip if nothing
                // can refill it mid-run.
                let sinks = sinks.get_or_insert_with(|| {
                    self.order
                        .values()
                        .filter_map(|&tid| taps.get(tid.0).map(|t| t.sink().0))
                        .collect()
                });
                if sinks.contains(&source) {
                    return 0;
                }
                self.run_plan.insert(source, SourceRun::Starved);
            }
        }

        // Apply the run, still in creation order (order is immaterial in an
        // unclamped linear run, but keeping it makes review trivial).
        for &tid in self.order.values() {
            let tap = taps.get_mut(tid.0).expect("flow index out of sync");
            let source = tap.source();
            let sink = tap.sink();
            match self.run_plan.get(&source.0) {
                Some(SourceRun::Starved) => tap.bulk_advance_const_starved(n, dt),
                Some(SourceRun::Covered) | None => {
                    // `None` only happens for all-zero-rate sources, where
                    // the move is zero anyway.
                    let moved = tap.bulk_advance_const(n, dt);
                    if moved.is_zero() {
                        continue;
                    }
                    reserves
                        .get_mut(source.0)
                        .expect("covered source is live")
                        .debit_outflow(moved);
                    reserves
                        .get_mut(sink.0)
                        .expect("taps to dead sinks are GC'd")
                        .credit(moved);
                }
            }
        }
        n
    }
}

/// One tick of the global anti-hoarding decay: every non-exempt positive
/// **energy** reserve (battery excluded) leaks `ppm` of its level back to
/// the battery. Quota kinds never decay (§9: a data plan does not evaporate
/// for being unspent), which also keeps per-kind conservation exact — bytes
/// must not leak into the joule pool. Shared by the engine tick and the
/// naive reference model.
pub(crate) fn decay_tick(reserves: &mut Arena<Reserve>, battery: RawId, ppm: u64) {
    if ppm == 0 {
        return;
    }
    let mut reclaimed = Energy::ZERO;
    for (rid, r) in reserves.iter_mut() {
        if rid == battery
            || r.kind() != crate::kind::ResourceKind::Energy
            || r.is_decay_exempt()
            || !r.balance().is_positive()
        {
            continue;
        }
        let leak = r.balance().scale_ppm(ppm);
        if leak.is_positive() {
            r.debit_decay(leak);
            reclaimed += leak;
        }
    }
    if reclaimed.is_positive() {
        reserves
            .get_mut(battery)
            .expect("battery is never deleted")
            .credit(reclaimed);
    }
}

/// Differential tests: the `FlowEngine` must be **byte-identical** to the
/// naive reference loop (`flow_until_reference`) on every balance, every
/// accounting stat, and the exact µJ conservation totals — across random
/// graph shapes, rates, mutation interleavings, and flow spans long enough
/// to exercise both the per-tick path and the closed-form fast-forward.
#[cfg(test)]
mod differential {
    use cinder_label::Label;
    use cinder_sim::{Energy, Power, SimDuration, SimTime};
    use proptest::prelude::*;

    use crate::graph::{Actor, GraphConfig, ResourceGraph};
    use crate::kind::{Quantity, ResourceKind};
    use crate::reserve::ReserveStats;
    use crate::tap::RateSpec;
    use crate::{ReserveId, TapId};

    /// A randomised graph mutation (applied identically to both graphs).
    ///
    /// The id pool mixes Energy and NetworkBytes reserves (see
    /// `run_differential`), so tap/transfer ops randomly cross kinds —
    /// those fail identically in both implementations, while same-kind ops
    /// flow bytes and joules through the same engine pass.
    #[derive(Debug, Clone)]
    enum Op {
        CreateReserve,
        /// A `NetworkBytes` reserve: multi-kind graphs flow in one pass.
        CreateByteReserve,
        CreateConstTap {
            src: usize,
            dst: usize,
            mw: u64,
        },
        CreatePropTap {
            src: usize,
            dst: usize,
            ppm: u64,
        },
        SetTapRateConst {
            t: usize,
            mw: u64,
        },
        SetTapRateProp {
            t: usize,
            ppm: u64,
        },
        DeleteTap {
            t: usize,
        },
        DeleteReserve {
            r: usize,
        },
        Transfer {
            src: usize,
            dst: usize,
            mj: u64,
        },
        ConsumeWithDebt {
            r: usize,
            mj: u64,
        },
        Flow {
            ms: u64,
        },
        /// Long span: hits the fast-forward path when the tap set allows.
        LongFlow {
            secs: u64,
        },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::CreateReserve),
            Just(Op::CreateByteReserve),
            (0usize..8, 0usize..8, 0u64..2_000)
                .prop_map(|(src, dst, mw)| { Op::CreateConstTap { src, dst, mw } }),
            (0usize..8, 0usize..8, 0u64..1_000_000)
                .prop_map(|(src, dst, ppm)| { Op::CreatePropTap { src, dst, ppm } }),
            (0usize..12, 0u64..2_000).prop_map(|(t, mw)| Op::SetTapRateConst { t, mw }),
            (0usize..12, 0u64..1_000_000).prop_map(|(t, ppm)| Op::SetTapRateProp { t, ppm }),
            (0usize..12).prop_map(|t| Op::DeleteTap { t }),
            (1usize..8).prop_map(|r| Op::DeleteReserve { r }),
            (0usize..8, 0usize..8, 0u64..5_000)
                .prop_map(|(src, dst, mj)| { Op::Transfer { src, dst, mj } }),
            (0usize..8, 0u64..5_000).prop_map(|(r, mj)| Op::ConsumeWithDebt { r, mj }),
            (1u64..30_000).prop_map(|ms| Op::Flow { ms }),
            (60u64..900).prop_map(|secs| Op::LongFlow { secs }),
        ]
    }

    /// Applies one op to a graph. `use_engine` selects which flow
    /// implementation advances time; everything else is shared.
    fn apply(
        g: &mut ResourceGraph,
        ids: &mut Vec<ReserveId>,
        now: &mut SimTime,
        op: &Op,
        use_engine: bool,
    ) {
        let k = Actor::kernel();
        match *op {
            Op::CreateReserve => {
                let id = g
                    .create_reserve(&k, "r", Label::default_label())
                    .expect("kernel create cannot fail");
                ids.push(id);
            }
            Op::CreateByteReserve => {
                let id = g
                    .create_reserve_kind(
                        &k,
                        "b",
                        Label::default_label(),
                        ResourceKind::NetworkBytes,
                    )
                    .expect("byte root exists");
                ids.push(id);
            }
            Op::CreateConstTap { src, dst, mw } => {
                let _ = g.create_tap(
                    &k,
                    "t",
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    RateSpec::constant(Power::from_milliwatts(mw)),
                    Label::default_label(),
                );
            }
            Op::CreatePropTap { src, dst, ppm } => {
                let _ = g.create_tap(
                    &k,
                    "p",
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    RateSpec::Proportional { ppm_per_s: ppm },
                    Label::default_label(),
                );
            }
            Op::SetTapRateConst { t, mw } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.set_tap_rate(&k, id, RateSpec::constant(Power::from_milliwatts(mw)));
                }
            }
            Op::SetTapRateProp { t, ppm } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.set_tap_rate(&k, id, RateSpec::Proportional { ppm_per_s: ppm });
                }
            }
            Op::DeleteTap { t } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.delete_tap(&k, id);
                }
            }
            Op::DeleteReserve { r } => {
                if ids.len() > 1 {
                    let idx = 1 + (r % (ids.len() - 1));
                    let id = ids.remove(idx);
                    let _ = g.delete_reserve(&k, id);
                }
            }
            Op::Transfer { src, dst, mj } => {
                let _ = g.transfer(
                    &k,
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    Energy::from_millijoules(mj as i64),
                );
            }
            Op::ConsumeWithDebt { r, mj } => {
                let _ = g.consume_with_debt(
                    &k,
                    ids[r % ids.len()],
                    Energy::from_millijoules(mj as i64),
                );
            }
            Op::Flow { ms } => {
                *now += SimDuration::from_millis(ms);
                flow(g, *now, use_engine);
            }
            Op::LongFlow { secs } => {
                *now += SimDuration::from_secs(secs);
                flow(g, *now, use_engine);
            }
        }
    }

    fn flow(g: &mut ResourceGraph, now: SimTime, use_engine: bool) {
        if use_engine {
            g.flow_until(now);
        } else {
            g.flow_until_reference(now);
        }
    }

    fn nth_tap(g: &ResourceGraph, n: usize) -> Option<TapId> {
        let count = g.tap_count();
        if count == 0 {
            return None;
        }
        g.taps().nth(n % count).map(|(id, _)| id)
    }

    /// Every observable byte of graph state, for exact comparison. The
    /// totals element carries one entry per [`ResourceKind`] plus the
    /// global sum.
    type StateDump = (
        SimTime,
        Vec<(ReserveId, Energy, ReserveStats)>,
        Vec<(TapId, RateSpec, u64)>,
        Vec<crate::graph::GraphTotals>,
    );

    fn dump(g: &ResourceGraph) -> StateDump {
        let mut totals: Vec<_> = ResourceKind::ALL.iter().map(|&k| g.totals_for(k)).collect();
        totals.push(g.totals());
        (
            g.now(),
            g.reserves()
                .map(|(id, r)| (id, r.balance(), r.stats()))
                .collect(),
            g.taps().map(|(id, t)| (id, t.rate(), t.seq())).collect(),
            totals,
        )
    }

    fn run_differential(config: GraphConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
        let initial = Energy::from_joules(15_000);
        let mut engine_g = ResourceGraph::with_config(initial, config);
        let mut reference_g = ResourceGraph::with_config(initial, config);
        let mut engine_ids = vec![engine_g.battery()];
        let mut reference_ids = vec![reference_g.battery()];
        // Seed the byte side of the graph so random taps/transfers mix
        // kinds: a NetworkBytes root plus one quota reserve in the pool.
        let k = Actor::kernel();
        for (g, ids) in [
            (&mut engine_g, &mut engine_ids),
            (&mut reference_g, &mut reference_ids),
        ] {
            let pool = g
                .create_root(&k, "byte-pool", Quantity::network_bytes(50_000_000))
                .expect("fresh graph has no byte root");
            ids.push(pool);
            ids.push(
                g.create_reserve_kind(
                    &k,
                    "plan",
                    Label::default_label(),
                    ResourceKind::NetworkBytes,
                )
                .expect("byte root just created"),
            );
        }
        let (mut now_a, mut now_b) = (SimTime::ZERO, SimTime::ZERO);
        for op in &ops {
            apply(&mut engine_g, &mut engine_ids, &mut now_a, op, true);
            apply(&mut reference_g, &mut reference_ids, &mut now_b, op, false);
            let (a, b) = (dump(&engine_g), dump(&reference_g));
            prop_assert_eq!(&a, &b, "divergence after {:?}", op);
            for (kind_totals, kind) in
                a.3.iter()
                    .zip(ResourceKind::ALL.iter().map(Some).chain([None]))
            {
                prop_assert!(
                    kind_totals.conserved(),
                    "conservation violated for {:?} after {:?}: {:?}",
                    kind,
                    op,
                    kind_totals
                );
            }
        }
        // Drain one more long all-paths flow at the end.
        now_a += SimDuration::from_secs(3_600);
        engine_g.flow_until(now_a);
        reference_g.flow_until_reference(now_a);
        prop_assert_eq!(dump(&engine_g), dump(&reference_g));
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Decay off: exercises the closed-form fast-forward heavily.
        #[test]
        fn engine_matches_reference_without_decay(
            ops in proptest::collection::vec(arb_op(), 1..40),
        ) {
            run_differential(
                GraphConfig { decay: None, ..GraphConfig::default() },
                ops,
            )?;
        }

        /// Decay on: every tick runs the indexed per-tick path.
        #[test]
        fn engine_matches_reference_with_decay(
            ops in proptest::collection::vec(arb_op(), 1..30),
        ) {
            run_differential(GraphConfig::default(), ops)?;
        }
    }

    /// The acceptance-criterion scenario: 100 reserves, 200 constant taps,
    /// one hour of simulated time — engine and reference agree exactly.
    #[test]
    fn hour_long_const_graph_is_exact() {
        let config = GraphConfig {
            decay: None,
            ..GraphConfig::default()
        };
        let initial = Energy::from_joules(1_000_000);
        let mut engine_g = ResourceGraph::with_config(initial, config);
        let mut reference_g = ResourceGraph::with_config(initial, config);
        let k = Actor::kernel();
        for g in [&mut engine_g, &mut reference_g] {
            let battery = g.battery();
            let mut reserves = vec![battery];
            for i in 0..100 {
                let r = g
                    .create_reserve(&k, &format!("r{i}"), Label::default_label())
                    .unwrap();
                reserves.push(r);
            }
            for i in 0..200usize {
                // Half the taps fan out from the battery, half chain
                // between reserves (so some sources start empty and only
                // fill through upstream taps — the clamp-boundary path).
                let (src, dst) = if i % 2 == 0 {
                    (battery, reserves[1 + i / 2])
                } else {
                    (reserves[1 + (i % 100)], reserves[1 + ((i + 37) % 100)])
                };
                if src == dst {
                    continue;
                }
                g.create_tap(
                    &k,
                    &format!("t{i}"),
                    src,
                    dst,
                    RateSpec::constant(Power::from_microwatts(500 + 137 * i as u64)),
                    Label::default_label(),
                )
                .unwrap();
            }
        }
        let hour = SimTime::from_secs(3_600);
        engine_g.flow_until(hour);
        reference_g.flow_until_reference(hour);
        assert_eq!(dump(&engine_g), dump(&reference_g));
        assert!(engine_g.totals().conserved());
    }

    /// Index bookkeeping follows tap/reserve lifecycle.
    #[test]
    fn index_tracks_mutations() {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(100),
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let a = g.create_reserve(&k, "a", Label::default_label()).unwrap();
        let b = g.create_reserve(&k, "b", Label::default_label()).unwrap();
        let t1 = g
            .create_tap(
                &k,
                "t1",
                g.battery(),
                a,
                RateSpec::constant(Power::from_milliwatts(1)),
                Label::default_label(),
            )
            .unwrap();
        let _t2 = g
            .create_tap(
                &k,
                "t2",
                a,
                b,
                RateSpec::proportional(0.1),
                Label::default_label(),
            )
            .unwrap();
        assert_eq!(g.flow_index_len(), (2, 2));
        assert!(!g.flow_all_const());
        g.delete_tap(&k, t1).unwrap();
        assert_eq!(g.flow_index_len(), (1, 1));
        // Re-rating the proportional tap to const restores fast-forward
        // eligibility.
        let t2 = g.taps().next().unwrap().0;
        g.set_tap_rate(&k, t2, RateSpec::constant(Power::from_milliwatts(2)))
            .unwrap();
        assert!(g.flow_all_const());
        // Deleting a reserve GCs its taps out of the index.
        g.delete_reserve(&k, a).unwrap();
        assert_eq!(g.flow_index_len(), (0, 0));
    }
}
