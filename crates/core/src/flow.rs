//! The `FlowEngine`: indexed, allocation-free batch tap execution with
//! closed-form fast-forward.
//!
//! The paper notes that tap transfers "are executed in batch periodically to
//! minimize scheduling and context-switch overheads" (§3.3). The original
//! `flow_one_tick` honoured the batching but not the *minimize*: every tick
//! it allocated a fresh `BTreeMap` snapshot of **all** reserve levels and a
//! `Vec` of **all** tap ids, making `flow_until(1 hour)` cost
//! O(ticks × (R + T) log R) with two heap allocations per tick. This module
//! replaces that loop while preserving its semantics bit-for-bit (asserted
//! by the differential property tests below against the naive reference
//! model, [`crate::ResourceGraph::flow_until_reference`]):
//!
//! * **Per-source adjacency index** — tap lists keyed by source reserve, in
//!   tap-creation order, maintained incrementally by
//!   [`crate::ResourceGraph::create_tap`] / `delete_tap` / `set_tap_rate` /
//!   `delete_reserve`. A global creation-order list drives application, so
//!   the documented oversubscription rule (earlier-created taps win) is
//!   unchanged.
//! * **Reusable scratch snapshot** — start-of-tick levels are recorded only
//!   for sources that feed a live proportional tap (constant taps never read
//!   the snapshot), into an epoch-stamped buffer that is reused across
//!   ticks: zero steady-state allocation.
//! * **Quiescent-source skipping** — a proportional tap whose source
//!   snapshot is non-positive moves nothing and leaves its carry untouched,
//!   so it is skipped without computing a transfer.
//! * **Partitioned closed-form fast-forward** — each multi-tick
//!   `flow_until` span is planned as a *run*: sources are classified into a
//!   **dynamic** partition (sources of live proportional taps, sources near
//!   their clamp boundary, and empty sources that taps may refill) and a
//!   **linear** partition (provably covered for the whole run, or provably
//!   starved with no inflow). Every tap adjacent to a dynamic reserve is
//!   executed tick by tick over a flat structure-of-arrays loop (dense
//!   slots, no map or arena lookups); every other tap is applied in closed
//!   form over the whole run. With decay on, every energy source is simply
//!   dynamic (quota kinds never decay, so their closed forms survive) and
//!   the SoA loop runs the per-tick decay over a maintained
//!   eligible-reserve list. An all-constant decay-free graph degenerates to
//!   the pure closed form (the whole span is one event); a mixed graph pays
//!   per-tick cost only for its proportional *island*, not the whole graph.
//!
//! The partition is sound because a covered source can never clamp (its
//! balance bounds the run length, counting every out-tap in either
//! partition), so the in-run timing of its closed-formed transfers is
//! unobservable; and every flow adjacent to a dynamic reserve is ticked, so
//! proportional snapshots and clamp order (tap creation order) see exactly
//! the per-tick trajectory the reference model computes.
//!
//! The engine lives inside [`crate::ResourceGraph`]; it has no public
//! surface of its own.

use std::collections::{BTreeMap, HashMap};

use cinder_sim::{Energy, SimDuration};

use crate::arena::{Arena, RawId};
use crate::graph::TapId;
use crate::reserve::Reserve;
use crate::tap::{RateSpec, Tap};

/// Per-source slice of the adjacency index.
#[derive(Debug, Default)]
struct SourceTaps {
    /// This source's outgoing taps, keyed by creation sequence — iteration
    /// is creation order, removal is O(log n) (reserve GC can revoke many
    /// taps at once, e.g. a browser page's container being unlinked).
    taps: BTreeMap<u64, TapId>,
    /// How many of them are proportional with a nonzero rate.
    live_prop: usize,
}

/// What the run planner decided about one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceRun {
    /// Balance provably covers the whole run: transfers apply unclamped, in
    /// closed form.
    Covered,
    /// Non-positive balance and no inflow: every transfer clamps to zero,
    /// only tap carries advance (closed form).
    Starved,
    /// Tick-by-tick trajectory matters: a live proportional tap reads this
    /// source's level, or it may clamp (or come alive) mid-run. All taps
    /// touching a dynamic reserve join the ticked partition.
    Dynamic,
}

/// How a ticked tap computes its per-tick desired transfer (the SoA image
/// of [`RateSpec`] with the tick span pre-multiplied in).
#[derive(Debug, Clone, Copy)]
enum TickRate {
    /// `step = rate_µW × dt_µs`; per tick `carry' = (carry + step) mod 1e6`
    /// and `⌊(carry + step)/1e6⌋` µJ move.
    Const { step: u128 },
    /// `ppm_dt = ppm × dt_µs`; per tick the start-of-tick source level is
    /// read from `snap[snap_idx]`.
    Prop { ppm_dt: u128, snap_idx: u32 },
}

/// One tap of the ticked (dynamic) partition, resolved to dense slots.
#[derive(Debug, Clone, Copy)]
struct TickedTap {
    raw: RawId,
    src: u32,
    dst: u32,
    rate: TickRate,
    carry: u128,
}

/// Indexed batch-flow executor. See the module docs for the design.
pub(crate) struct FlowEngine {
    /// All live taps as `(seq, id)`, sorted by creation sequence
    /// ([`Tap::seq`]) — iteration is the application order that defines
    /// oversubscription priority. Seqs are assigned monotonically, so
    /// insertion is a push; removal is a binary search plus shift. A dense
    /// vector beats a tree here because the per-tick loop walks it once per
    /// tick, while mutation is comparatively rare.
    order: Vec<(u64, TapId)>,
    /// Tap lists keyed by source reserve.
    by_source: HashMap<RawId, SourceTaps>,
    /// Inbound-tap count per reserve (any rate, either kind): O(1) "can a
    /// tap refill this reserve?" for run planning and the kernel's
    /// idle-skip guard.
    inbound: HashMap<RawId, u32>,
    /// Sources with at least one live proportional tap — the reserves the
    /// per-tick snapshot must cover, kept dense so the tick loop does not
    /// walk the whole `by_source` map.
    prop_sources: Vec<RawId>,
    /// Total live proportional (nonzero-rate) taps; the pure closed form
    /// (empty ticked partition) requires zero.
    live_prop: usize,
    /// Scratch: start-of-tick level per reserve slot, valid when the
    /// matching `snapshot_epoch` entry equals `epoch`.
    snapshot: Vec<Energy>,
    snapshot_epoch: Vec<u32>,
    epoch: u32,
    /// Scratch for run planning, reused across calls.
    run_plan: HashMap<RawId, SourceRun>,
    // ----- ticked-partition scratch (reused across runs) -----------------
    /// The ticked taps, in creation (seq) order — the clamp-priority order.
    ticked: Vec<TickedTap>,
    /// Dense slot assignment for every reserve a ticked tap touches.
    slot_of: HashMap<RawId, u32>,
    /// Reverse map: slot → reserve, for writeback.
    slot_raw: Vec<RawId>,
    /// Working balances (µJ grains) per slot.
    levels: Vec<i64>,
    /// Accumulated tap inflow / outflow per slot, applied to the reserve
    /// stats once at writeback (sums — identical to per-tick application).
    in_acc: Vec<i64>,
    out_acc: Vec<i64>,
    /// Slots needing a start-of-tick snapshot (proportional sources), and
    /// the snapshot values themselves (parallel arrays).
    prop_slots: Vec<u32>,
    snap: Vec<i64>,
    /// Slots subject to the global decay this run (Energy, non-exempt,
    /// not the battery), and the per-slot decayed totals.
    decay_slots: Vec<u32>,
    decay_acc: Vec<i64>,
    /// Decay-eligible reserves (Energy kind, not exempt), maintained by the
    /// graph's reserve lifecycle so neither the per-tick decay nor run
    /// planning walks the whole arena. Order is immaterial: per-reserve
    /// leaks are independent and the battery is credited once.
    decay_eligible: Vec<RawId>,
}

fn is_live_prop(rate: RateSpec) -> bool {
    matches!(rate, RateSpec::Proportional { ppm_per_s } if ppm_per_s > 0)
}

impl FlowEngine {
    pub(crate) fn new() -> Self {
        FlowEngine {
            order: Vec::new(),
            by_source: HashMap::new(),
            prop_sources: Vec::new(),
            inbound: HashMap::new(),
            live_prop: 0,
            snapshot: Vec::new(),
            snapshot_epoch: Vec::new(),
            epoch: 0,
            run_plan: HashMap::new(),
            ticked: Vec::new(),
            slot_of: HashMap::new(),
            slot_raw: Vec::new(),
            levels: Vec::new(),
            in_acc: Vec::new(),
            out_acc: Vec::new(),
            prop_slots: Vec::new(),
            snap: Vec::new(),
            decay_slots: Vec::new(),
            decay_acc: Vec::new(),
            decay_eligible: Vec::new(),
        }
    }

    /// Reserve-lifecycle hooks: track decay eligibility (Energy kind and
    /// not exempt). Called by every graph path that creates, deletes, or
    /// re-flags a reserve.
    pub(crate) fn on_reserve_eligibility(&mut self, reserve: RawId, eligible: bool) {
        let present = self.decay_eligible.iter().position(|&r| r == reserve);
        match (eligible, present) {
            (true, None) => self.decay_eligible.push(reserve),
            (false, Some(i)) => {
                self.decay_eligible.swap_remove(i);
            }
            _ => {}
        }
    }

    /// True when the global decay cannot move a microjoule this tick (and
    /// so, absent balance writes, on any later tick either): every
    /// decay-eligible balance is non-positive or small enough that its
    /// per-tick leak rounds to zero. Mirrors the run planner's inert-decay
    /// test; `ResourceGraph::flow_is_frozen` composes it with the
    /// starved-taps check.
    pub(crate) fn decay_is_inert(
        &self,
        reserves: &Arena<Reserve>,
        decay_ppm_per_tick: u64,
    ) -> bool {
        decay_ppm_per_tick == 0
            || self.decay_eligible.iter().all(|&rid| {
                reserves.get(rid).is_none_or(|r| {
                    let b = r.balance();
                    !b.is_positive() || !b.scale_ppm(decay_ppm_per_tick).is_positive()
                })
            })
    }

    // ----- index maintenance (called by ResourceGraph mutators) ----------

    /// Registers a newly created tap.
    pub(crate) fn on_tap_created(
        &mut self,
        id: TapId,
        seq: u64,
        source: RawId,
        sink: RawId,
        rate: RateSpec,
    ) {
        debug_assert!(self.order.last().is_none_or(|&(s, _)| s < seq));
        self.order.push((seq, id));
        let entry = self.by_source.entry(source).or_default();
        entry.taps.insert(seq, id);
        *self.inbound.entry(sink).or_insert(0) += 1;
        if is_live_prop(rate) {
            entry.live_prop += 1;
            self.live_prop += 1;
            if entry.live_prop == 1 {
                self.prop_sources.push(source);
            }
        }
    }

    /// Unregisters a tap about to be (or just) removed.
    pub(crate) fn on_tap_removed(&mut self, seq: u64, source: RawId, sink: RawId, rate: RateSpec) {
        if let Ok(i) = self.order.binary_search_by_key(&seq, |&(s, _)| s) {
            self.order.remove(i);
        }
        let mut prop_source_died = false;
        if let Some(entry) = self.by_source.get_mut(&source) {
            entry.taps.remove(&seq);
            if is_live_prop(rate) {
                entry.live_prop -= 1;
                self.live_prop -= 1;
                prop_source_died = entry.live_prop == 0;
            }
            if entry.taps.is_empty() {
                self.by_source.remove(&source);
            }
        }
        if prop_source_died {
            self.drop_prop_source(source);
        }
        if let Some(count) = self.inbound.get_mut(&sink) {
            *count -= 1;
            if *count == 0 {
                self.inbound.remove(&sink);
            }
        }
    }

    /// Whether any live tap (of any rate) sinks into `reserve` — O(1).
    pub(crate) fn has_inbound(&self, reserve: RawId) -> bool {
        self.inbound.contains_key(&reserve)
    }

    /// The live taps draining `reserve`, in creation order — O(outbound
    /// taps of that reserve), off the per-source adjacency index.
    pub(crate) fn outbound(&self, reserve: RawId) -> impl Iterator<Item = TapId> + '_ {
        self.by_source
            .get(&reserve)
            .into_iter()
            .flat_map(|entry| entry.taps.values().copied())
    }

    /// Updates prop/const classification when a tap's rate changes.
    pub(crate) fn on_tap_rate_changed(&mut self, source: RawId, old: RateSpec, new: RateSpec) {
        let (was, is) = (is_live_prop(old), is_live_prop(new));
        if was == is {
            return;
        }
        let entry = self
            .by_source
            .get_mut(&source)
            .expect("rate change on unindexed tap");
        if is {
            entry.live_prop += 1;
            self.live_prop += 1;
            if entry.live_prop == 1 {
                self.prop_sources.push(source);
            }
        } else {
            entry.live_prop -= 1;
            self.live_prop -= 1;
            if entry.live_prop == 0 {
                self.drop_prop_source(source);
            }
        }
    }

    fn drop_prop_source(&mut self, source: RawId) {
        if let Some(i) = self.prop_sources.iter().position(|&s| s == source) {
            self.prop_sources.swap_remove(i);
        }
    }

    /// True when no live proportional tap exists (the whole graph is
    /// closed-form eligible). Test introspection; the planner re-derives
    /// this per source.
    #[cfg(test)]
    pub(crate) fn all_const(&self) -> bool {
        self.live_prop == 0
    }

    #[cfg(test)]
    pub(crate) fn index_len(&self) -> (usize, usize) {
        (self.order.len(), self.by_source.len())
    }

    // ----- per-tick execution ---------------------------------------------

    /// Runs one batch tick: taps in creation order against a start-of-tick
    /// snapshot, then the global decay. Semantically identical to the naive
    /// reference loop, without its per-tick allocations.
    pub(crate) fn tick(
        &mut self,
        reserves: &mut Arena<Reserve>,
        taps: &mut Arena<Tap>,
        battery: RawId,
        decay_ppm_per_tick: u64,
        dt: SimDuration,
    ) {
        // Snapshot start-of-tick levels — but only for sources feeding a
        // live proportional tap; constant taps never read the snapshot.
        self.epoch = self.epoch.wrapping_add(1);
        for i in 0..self.prop_sources.len() {
            let source = self.prop_sources[i];
            let Some(r) = reserves.get(source) else {
                continue;
            };
            let slot = source.index() as usize;
            if slot >= self.snapshot.len() {
                self.snapshot.resize(slot + 1, Energy::ZERO);
                self.snapshot_epoch.resize(slot + 1, 0);
            }
            self.snapshot[slot] = r.balance();
            self.snapshot_epoch[slot] = self.epoch;
        }
        for &(_, tid) in &self.order {
            let tap = taps.get_mut(tid.0).expect("flow index out of sync");
            let source = tap.source();
            let sink = tap.sink();
            let desired = match tap.rate() {
                RateSpec::Const(_) => tap.desired_transfer(Energy::ZERO, dt),
                RateSpec::Proportional { .. } => {
                    let slot = source.0.index() as usize;
                    let level = match self.snapshot_epoch.get(slot) {
                        Some(&e) if e == self.epoch => self.snapshot[slot],
                        _ => Energy::ZERO,
                    };
                    if !level.is_positive() {
                        // Quiescent source: the transfer is zero and the
                        // carry is untouched — skip the arithmetic.
                        continue;
                    }
                    tap.desired_transfer(level, dt)
                }
            };
            if desired.is_zero() {
                continue;
            }
            let Some(src) = reserves.get_mut(source.0) else {
                continue;
            };
            let amount = desired.min(src.balance().clamp_non_negative());
            if amount.is_zero() {
                continue;
            }
            src.debit_outflow(amount);
            reserves
                .get_mut(sink.0)
                .expect("taps to dead sinks are GC'd")
                .credit(amount);
        }
        if decay_ppm_per_tick > 0 {
            let mut reclaimed = Energy::ZERO;
            for i in 0..self.decay_eligible.len() {
                let Some(r) = reserves.get_mut(self.decay_eligible[i]) else {
                    continue;
                };
                if !r.balance().is_positive() {
                    continue;
                }
                let leak = r.balance().scale_ppm(decay_ppm_per_tick);
                if leak.is_positive() {
                    r.debit_decay(leak);
                    reclaimed += leak;
                }
            }
            if reclaimed.is_positive() {
                reserves
                    .get_mut(battery)
                    .expect("battery is never deleted")
                    .credit(reclaimed);
            }
        }
    }

    // ----- partitioned closed-form fast-forward ---------------------------

    /// Attempts to advance up to `max_ticks` ticks as one planned *run*,
    /// returning how many were applied (0 means: run one tick the slow
    /// way). Caller-checked precondition: decay disabled.
    ///
    /// Sources are classified per run:
    ///
    /// * **Dynamic** — a live proportional tap reads this source's level,
    ///   or it could clamp mid-run (balance covers less than the demotion
    ///   threshold of the span), or it is empty but a tap may refill it.
    ///   Every tap touching a dynamic reserve (either endpoint) joins the
    ///   ticked partition and is executed tick by tick over dense SoA
    ///   arrays — bit-identical to [`FlowEngine::tick`], minus the map and
    ///   arena lookups.
    /// * **Covered** — balance ≥ n × an upper bound of its per-tick outflow
    ///   (each const tap moves at most ⌊(p·dt + 999_999)/1e6⌋ µJ per tick,
    ///   counting taps of *both* partitions), so no clamp can engage within
    ///   the run and its closed-formed taps telescope exactly
    ///   ([`Tap::bulk_advance_const`]).
    /// * **Starved** — non-positive balance, no inbound tap, no live
    ///   proportional outflow *or* provably stuck at ≤ 0: every transfer
    ///   clamps to zero for the whole run, only carries advance.
    ///
    /// With no dynamic source this is the pure closed form (an all-const
    /// span is one event); with dynamic sources only the proportional
    /// island pays per-tick cost.
    pub(crate) fn run_span(
        &mut self,
        reserves: &mut Arena<Reserve>,
        taps: &mut Arena<Tap>,
        dt: SimDuration,
        max_ticks: u64,
        decay_ppm_per_tick: u64,
        battery: RawId,
    ) -> u64 {
        debug_assert!(max_ticks > 0);
        let decaying = decay_ppm_per_tick > 0;
        if self.order.is_empty() && !decaying {
            // No taps at all: nothing moves, whole span is one event.
            return max_ticks;
        }
        if (self.live_prop > 0 || decaying) && max_ticks < MIN_PARTITIONED_SPAN {
            // Planning + SoA build costs more than ticking a short span.
            return 0;
        }
        let dt_us = dt.as_micros() as u128;

        // ----- plan: classify every source ------------------------------
        // A source whose balance covers less than `demote_below` ticks is
        // ticked rather than letting it cap the whole run near 1: ticking a
        // few taps per tick is cheaper than replanning O(R + T) every
        // handful of ticks.
        let demote_below = (max_ticks / 4).max(MIN_PARTITIONED_SPAN);
        self.run_plan.clear();
        let mut n = max_ticks;
        let mut any_dynamic = false;
        for (&source, entry) in &self.by_source {
            let balance = reserves.get(source).map(|r| r.balance());
            if entry.live_prop > 0 {
                // A live proportional tap reads this level every tick —
                // unless the source is provably stuck at ≤ 0 (no inflow
                // possible), in which case nothing ever moves or touches a
                // carry and the whole run is a no-op for its taps.
                let stuck = balance.is_some_and(|b| !b.is_positive()) && !self.has_inbound(source);
                if stuck {
                    self.run_plan.insert(source, SourceRun::Starved);
                } else {
                    self.run_plan.insert(source, SourceRun::Dynamic);
                    any_dynamic = true;
                }
                continue;
            }
            if decaying
                && reserves
                    .get(source)
                    .is_some_and(|r| r.kind() == crate::kind::ResourceKind::Energy)
            {
                // Decay re-shapes every positive energy balance each tick,
                // so no energy source can be *covered* for a run. Stuck
                // empties are still starved (decay never touches ≤ 0);
                // everything else ticks. Quota kinds never decay, so their
                // closed forms below survive unchanged.
                if balance.is_some_and(|b| !b.is_positive()) && !self.has_inbound(source) {
                    self.run_plan.insert(source, SourceRun::Starved);
                } else {
                    self.run_plan.insert(source, SourceRun::Dynamic);
                    any_dynamic = true;
                }
                continue;
            }
            // Upper bound of this source's per-tick outflow in µJ.
            let mut bound_uj: u128 = 0;
            for &tid in entry.taps.values() {
                let tap = taps.get(tid.0).expect("flow index out of sync");
                if let RateSpec::Const(p) = tap.rate() {
                    bound_uj += (p.as_microwatts() as u128 * dt_us).div_ceil(1_000_000);
                }
            }
            if bound_uj == 0 {
                // Only zero-rate taps: inert, no constraint either way
                // (closed form moves zero and leaves carries untouched,
                // exactly like the per-tick loop).
                continue;
            }
            let Some(balance) = balance else {
                // Dead source (unreachable: reserve GC revokes its taps):
                // carries advance, nothing can move.
                self.run_plan.insert(source, SourceRun::Starved);
                continue;
            };
            if balance.is_positive() {
                let n_src = (balance.as_microjoules() as u128 / bound_uj) as u64;
                if n_src < demote_below {
                    // Near the clamp boundary: tick it out.
                    self.run_plan.insert(source, SourceRun::Dynamic);
                    any_dynamic = true;
                } else {
                    n = n.min(n_src);
                    self.run_plan.insert(source, SourceRun::Covered);
                }
            } else if self.has_inbound(source) {
                // Empty (or indebted) but refillable: it may come alive
                // mid-run, so its clamps must be computed per tick.
                self.run_plan.insert(source, SourceRun::Dynamic);
                any_dynamic = true;
            } else {
                self.run_plan.insert(source, SourceRun::Starved);
            }
        }

        // Under decay no energy source is Covered (forced Dynamic or
        // Starved above), so with nothing Dynamic no closed form below can
        // touch an energy balance. If additionally every decay-eligible
        // balance is too small for its per-tick leak to round above zero,
        // the decay pass is a provable no-op for the whole run: skip the
        // SoA build and the per-tick loop entirely. This is what lets a
        // drained device (battery and reserves at or under the
        // leak-rounding floor) settle a span in O(R + T) instead of
        // O(ticks) — the fleet's dead-battery tail.
        let decay_inert = decaying
            && !any_dynamic
            && self.decay_eligible.iter().all(|&rid| {
                reserves.get(rid).is_none_or(|r| {
                    let b = r.balance();
                    !b.is_positive() || !b.scale_ppm(decay_ppm_per_tick).is_positive()
                })
            });

        // ----- apply the linear partition, collect the ticked one --------
        // Still in creation order (order is immaterial in an unclamped
        // linear run, but keeping it makes review trivial). Ticked taps are
        // gathered in the same order, which *is* their clamp priority.
        self.ticked.clear();
        self.slot_of.clear();
        self.slot_raw.clear();
        self.levels.clear();
        self.prop_slots.clear();
        self.decay_slots.clear();
        let mut battery_slot = u32::MAX;
        if decaying && !decay_inert {
            // Every decayable energy reserve joins the ticked arrays (its
            // balance changes every tick), plus the battery to receive the
            // reclaimed leakage. Safe to slot before the closed forms
            // below: under decay no energy source is Covered, so no
            // closed-form transfer ever touches an energy reserve.
            for i in 0..self.decay_eligible.len() {
                let rid = self.decay_eligible[i];
                debug_assert!(rid != battery, "battery is always exempt");
                let slot = slot_for(
                    &mut self.slot_of,
                    &mut self.slot_raw,
                    &mut self.levels,
                    reserves,
                    rid,
                );
                self.decay_slots.push(slot);
            }
            battery_slot = slot_for(
                &mut self.slot_of,
                &mut self.slot_raw,
                &mut self.levels,
                reserves,
                battery,
            );
        }
        for oi in 0..self.order.len() {
            let tid = self.order[oi].1;
            let tap = taps.get_mut(tid.0).expect("flow index out of sync");
            let source = tap.source().0;
            let sink = tap.sink().0;
            let src_run = self.run_plan.get(&source).copied();
            let dynamic = any_dynamic
                && (src_run == Some(SourceRun::Dynamic)
                    || self.run_plan.get(&sink) == Some(&SourceRun::Dynamic));
            if dynamic {
                let src = slot_for(
                    &mut self.slot_of,
                    &mut self.slot_raw,
                    &mut self.levels,
                    reserves,
                    source,
                );
                let dst = slot_for(
                    &mut self.slot_of,
                    &mut self.slot_raw,
                    &mut self.levels,
                    reserves,
                    sink,
                );
                let rate = match tap.rate() {
                    RateSpec::Const(p) => TickRate::Const {
                        step: p.as_microwatts() as u128 * dt_us,
                    },
                    RateSpec::Proportional { ppm_per_s } => {
                        // Snapshot slots are deduplicated per source.
                        let snap_idx = match self.prop_slots.iter().position(|&s| s == src) {
                            Some(i) => i as u32,
                            None => {
                                self.prop_slots.push(src);
                                (self.prop_slots.len() - 1) as u32
                            }
                        };
                        TickRate::Prop {
                            ppm_dt: ppm_per_s as u128 * dt_us,
                            snap_idx,
                        }
                    }
                };
                self.ticked.push(TickedTap {
                    raw: tid.0,
                    src,
                    dst,
                    rate,
                    carry: tap.remainder(),
                });
                continue;
            }
            match src_run {
                Some(SourceRun::Starved) => tap.bulk_advance_const_starved(n, dt),
                Some(SourceRun::Covered) | None => {
                    // `None` only happens for all-zero-rate sources, where
                    // the move is zero anyway.
                    let moved = tap.bulk_advance_const(n, dt);
                    if moved.is_zero() {
                        continue;
                    }
                    reserves
                        .get_mut(source)
                        .expect("covered source is live")
                        .debit_outflow(moved);
                    reserves
                        .get_mut(sink)
                        .expect("taps to dead sinks are GC'd")
                        .credit(moved);
                }
                Some(SourceRun::Dynamic) => unreachable!("dynamic taps were collected above"),
            }
        }

        // ----- tick the dynamic partition over flat arrays ---------------
        if !self.ticked.is_empty() || (decaying && !decay_inert) {
            self.in_acc.clear();
            self.in_acc.resize(self.levels.len(), 0);
            self.out_acc.clear();
            self.out_acc.resize(self.levels.len(), 0);
            self.decay_acc.clear();
            self.decay_acc.resize(self.levels.len(), 0);
            self.snap.clear();
            self.snap.resize(self.prop_slots.len(), 0);
            for _ in 0..n {
                // Start-of-tick snapshot of proportional source levels.
                for (snap, &slot) in self.snap.iter_mut().zip(&self.prop_slots) {
                    *snap = self.levels[slot as usize];
                }
                for tap in &mut self.ticked {
                    let desired: i64 = match tap.rate {
                        TickRate::Const { step } => {
                            let total = step + tap.carry;
                            tap.carry = total % 1_000_000;
                            (total / 1_000_000) as i64
                        }
                        TickRate::Prop { ppm_dt, snap_idx } => {
                            let level = self.snap[snap_idx as usize];
                            if level <= 0 {
                                // Quiescent source: zero transfer, carry
                                // untouched (see FlowEngine::tick).
                                continue;
                            }
                            let total = level as u128 * ppm_dt + tap.carry;
                            tap.carry = total % 1_000_000_000_000;
                            (total / 1_000_000_000_000) as i64
                        }
                    };
                    if desired <= 0 {
                        continue;
                    }
                    let amount = desired.min(self.levels[tap.src as usize].max(0));
                    if amount <= 0 {
                        continue;
                    }
                    self.levels[tap.src as usize] -= amount;
                    self.out_acc[tap.src as usize] += amount;
                    self.levels[tap.dst as usize] += amount;
                    self.in_acc[tap.dst as usize] += amount;
                }
                if decaying {
                    // The global decay, exactly as `decay_tick`: each
                    // positive slot leaks ⌊level·ppm/1e6⌋ back to the
                    // battery.
                    let mut reclaimed: i64 = 0;
                    for &slot in &self.decay_slots {
                        let level = self.levels[slot as usize];
                        if level > 0 {
                            let leak =
                                (level as i128 * decay_ppm_per_tick as i128 / 1_000_000) as i64;
                            if leak > 0 {
                                self.levels[slot as usize] -= leak;
                                self.decay_acc[slot as usize] += leak;
                                reclaimed += leak;
                            }
                        }
                    }
                    if reclaimed > 0 {
                        self.levels[battery_slot as usize] += reclaimed;
                        self.in_acc[battery_slot as usize] += reclaimed;
                    }
                }
            }
            // Writeback: accumulated stats and balances to the reserves,
            // carries to the taps. Sum-at-once equals tick-at-a-time: the
            // stats are running totals and balance updates commute.
            for (slot, &raw) in self.slot_raw.iter().enumerate() {
                let Some(r) = reserves.get_mut(raw) else {
                    continue; // dead endpoint: nothing ever moved through it
                };
                let inflow = self.in_acc[slot];
                if inflow > 0 {
                    r.credit(Energy::from_microjoules(inflow));
                }
                let outflow = self.out_acc[slot];
                if outflow > 0 {
                    r.debit_outflow(Energy::from_microjoules(outflow));
                }
                let decayed = self.decay_acc[slot];
                if decayed > 0 {
                    r.debit_decay(Energy::from_microjoules(decayed));
                }
            }
            for tap in &self.ticked {
                taps.get_mut(tap.raw)
                    .expect("ticked tap is live")
                    .set_remainder(tap.carry);
            }
        }
        n
    }
}

/// Below this span length a mixed graph is ticked directly: run planning
/// and SoA assembly cost more than a few indexed ticks.
const MIN_PARTITIONED_SPAN: u64 = 4;

/// Dense-slot assignment for the ticked partition (free function so the
/// borrow checker sees disjoint field borrows).
fn slot_for(
    slot_of: &mut HashMap<RawId, u32>,
    slot_raw: &mut Vec<RawId>,
    levels: &mut Vec<i64>,
    reserves: &Arena<Reserve>,
    reserve: RawId,
) -> u32 {
    *slot_of.entry(reserve).or_insert_with(|| {
        let slot = slot_raw.len() as u32;
        slot_raw.push(reserve);
        levels.push(
            reserves
                .get(reserve)
                .map(|r| r.balance().as_microjoules())
                .unwrap_or(0),
        );
        slot
    })
}

/// One tick of the global anti-hoarding decay: every non-exempt positive
/// **energy** reserve (battery excluded) leaks `ppm` of its level back to
/// the battery. Quota kinds never decay (§9: a data plan does not evaporate
/// for being unspent), which also keeps per-kind conservation exact — bytes
/// must not leak into the joule pool. The naive reference model scans the
/// whole arena; the engine walks its maintained eligible list (identical
/// outcome — per-reserve leaks are independent and summed once).
#[cfg(any(test, feature = "reference-flow"))]
pub(crate) fn decay_tick(reserves: &mut Arena<Reserve>, battery: RawId, ppm: u64) {
    if ppm == 0 {
        return;
    }
    let mut reclaimed = Energy::ZERO;
    for (rid, r) in reserves.iter_mut() {
        if rid == battery
            || r.kind() != crate::kind::ResourceKind::Energy
            || r.is_decay_exempt()
            || !r.balance().is_positive()
        {
            continue;
        }
        let leak = r.balance().scale_ppm(ppm);
        if leak.is_positive() {
            r.debit_decay(leak);
            reclaimed += leak;
        }
    }
    if reclaimed.is_positive() {
        reserves
            .get_mut(battery)
            .expect("battery is never deleted")
            .credit(reclaimed);
    }
}

/// Differential tests: the `FlowEngine` must be **byte-identical** to the
/// naive reference loop (`flow_until_reference`) on every balance, every
/// accounting stat, and the exact µJ conservation totals — across random
/// graph shapes, rates, mutation interleavings, and flow spans long enough
/// to exercise both the per-tick path and the closed-form fast-forward.
#[cfg(test)]
mod differential {
    use cinder_label::Label;
    use cinder_sim::{Energy, Power, SimDuration, SimTime};
    use proptest::prelude::*;

    use crate::graph::{Actor, GraphConfig, ResourceGraph};
    use crate::kind::{Quantity, ResourceKind};
    use crate::reserve::ReserveStats;
    use crate::tap::RateSpec;
    use crate::{ReserveId, TapId};

    /// A randomised graph mutation (applied identically to both graphs).
    ///
    /// The id pool mixes Energy and NetworkBytes reserves (see
    /// `run_differential`), so tap/transfer ops randomly cross kinds —
    /// those fail identically in both implementations, while same-kind ops
    /// flow bytes and joules through the same engine pass.
    #[derive(Debug, Clone)]
    enum Op {
        CreateReserve,
        /// A `NetworkBytes` reserve: multi-kind graphs flow in one pass.
        CreateByteReserve,
        CreateConstTap {
            src: usize,
            dst: usize,
            mw: u64,
        },
        CreatePropTap {
            src: usize,
            dst: usize,
            ppm: u64,
        },
        SetTapRateConst {
            t: usize,
            mw: u64,
        },
        SetTapRateProp {
            t: usize,
            ppm: u64,
        },
        DeleteTap {
            t: usize,
        },
        DeleteReserve {
            r: usize,
        },
        Transfer {
            src: usize,
            dst: usize,
            mj: u64,
        },
        ConsumeWithDebt {
            r: usize,
            mj: u64,
        },
        Flow {
            ms: u64,
        },
        /// Long span: hits the fast-forward path when the tap set allows.
        LongFlow {
            secs: u64,
        },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::CreateReserve),
            Just(Op::CreateByteReserve),
            (0usize..8, 0usize..8, 0u64..2_000)
                .prop_map(|(src, dst, mw)| { Op::CreateConstTap { src, dst, mw } }),
            (0usize..8, 0usize..8, 0u64..1_000_000)
                .prop_map(|(src, dst, ppm)| { Op::CreatePropTap { src, dst, ppm } }),
            (0usize..12, 0u64..2_000).prop_map(|(t, mw)| Op::SetTapRateConst { t, mw }),
            (0usize..12, 0u64..1_000_000).prop_map(|(t, ppm)| Op::SetTapRateProp { t, ppm }),
            (0usize..12).prop_map(|t| Op::DeleteTap { t }),
            (1usize..8).prop_map(|r| Op::DeleteReserve { r }),
            (0usize..8, 0usize..8, 0u64..5_000)
                .prop_map(|(src, dst, mj)| { Op::Transfer { src, dst, mj } }),
            (0usize..8, 0u64..5_000).prop_map(|(r, mj)| Op::ConsumeWithDebt { r, mj }),
            (1u64..30_000).prop_map(|ms| Op::Flow { ms }),
            (60u64..900).prop_map(|secs| Op::LongFlow { secs }),
        ]
    }

    /// Applies one op to a graph. `use_engine` selects which flow
    /// implementation advances time; everything else is shared.
    fn apply(
        g: &mut ResourceGraph,
        ids: &mut Vec<ReserveId>,
        now: &mut SimTime,
        op: &Op,
        use_engine: bool,
    ) {
        let k = Actor::kernel();
        match *op {
            Op::CreateReserve => {
                let id = g
                    .create_reserve(&k, "r", Label::default_label())
                    .expect("kernel create cannot fail");
                ids.push(id);
            }
            Op::CreateByteReserve => {
                let id = g
                    .create_reserve_kind(
                        &k,
                        "b",
                        Label::default_label(),
                        ResourceKind::NetworkBytes,
                    )
                    .expect("byte root exists");
                ids.push(id);
            }
            Op::CreateConstTap { src, dst, mw } => {
                let _ = g.create_tap(
                    &k,
                    "t",
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    RateSpec::constant(Power::from_milliwatts(mw)),
                    Label::default_label(),
                );
            }
            Op::CreatePropTap { src, dst, ppm } => {
                let _ = g.create_tap(
                    &k,
                    "p",
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    RateSpec::Proportional { ppm_per_s: ppm },
                    Label::default_label(),
                );
            }
            Op::SetTapRateConst { t, mw } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.set_tap_rate(&k, id, RateSpec::constant(Power::from_milliwatts(mw)));
                }
            }
            Op::SetTapRateProp { t, ppm } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.set_tap_rate(&k, id, RateSpec::Proportional { ppm_per_s: ppm });
                }
            }
            Op::DeleteTap { t } => {
                if let Some(id) = nth_tap(g, t) {
                    let _ = g.delete_tap(&k, id);
                }
            }
            Op::DeleteReserve { r } => {
                if ids.len() > 1 {
                    let idx = 1 + (r % (ids.len() - 1));
                    let id = ids.remove(idx);
                    let _ = g.delete_reserve(&k, id);
                }
            }
            Op::Transfer { src, dst, mj } => {
                let _ = g.transfer(
                    &k,
                    ids[src % ids.len()],
                    ids[dst % ids.len()],
                    Energy::from_millijoules(mj as i64),
                );
            }
            Op::ConsumeWithDebt { r, mj } => {
                let _ = g.consume_with_debt(
                    &k,
                    ids[r % ids.len()],
                    Energy::from_millijoules(mj as i64),
                );
            }
            Op::Flow { ms } => {
                *now += SimDuration::from_millis(ms);
                flow(g, *now, use_engine);
            }
            Op::LongFlow { secs } => {
                *now += SimDuration::from_secs(secs);
                flow(g, *now, use_engine);
            }
        }
    }

    fn flow(g: &mut ResourceGraph, now: SimTime, use_engine: bool) {
        if use_engine {
            g.flow_until(now);
        } else {
            g.flow_until_reference(now);
        }
    }

    fn nth_tap(g: &ResourceGraph, n: usize) -> Option<TapId> {
        let count = g.tap_count();
        if count == 0 {
            return None;
        }
        g.taps().nth(n % count).map(|(id, _)| id)
    }

    /// Every observable byte of graph state, for exact comparison. The
    /// totals element carries one entry per [`ResourceKind`] plus the
    /// global sum.
    type StateDump = (
        SimTime,
        Vec<(ReserveId, Energy, ReserveStats)>,
        Vec<(TapId, RateSpec, u64)>,
        Vec<crate::graph::GraphTotals>,
    );

    fn dump(g: &ResourceGraph) -> StateDump {
        let mut totals: Vec<_> = ResourceKind::ALL.iter().map(|&k| g.totals_for(k)).collect();
        totals.push(g.totals());
        (
            g.now(),
            g.reserves()
                .map(|(id, r)| (id, r.balance(), r.stats()))
                .collect(),
            g.taps().map(|(id, t)| (id, t.rate(), t.seq())).collect(),
            totals,
        )
    }

    fn run_differential(config: GraphConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
        let initial = Energy::from_joules(15_000);
        let mut engine_g = ResourceGraph::with_config(initial, config);
        let mut reference_g = ResourceGraph::with_config(initial, config);
        let mut engine_ids = vec![engine_g.battery()];
        let mut reference_ids = vec![reference_g.battery()];
        // Seed the byte side of the graph so random taps/transfers mix
        // kinds: a NetworkBytes root plus one quota reserve in the pool.
        let k = Actor::kernel();
        for (g, ids) in [
            (&mut engine_g, &mut engine_ids),
            (&mut reference_g, &mut reference_ids),
        ] {
            let pool = g
                .create_root(&k, "byte-pool", Quantity::network_bytes(50_000_000))
                .expect("fresh graph has no byte root");
            ids.push(pool);
            ids.push(
                g.create_reserve_kind(
                    &k,
                    "plan",
                    Label::default_label(),
                    ResourceKind::NetworkBytes,
                )
                .expect("byte root just created"),
            );
        }
        let (mut now_a, mut now_b) = (SimTime::ZERO, SimTime::ZERO);
        for op in &ops {
            apply(&mut engine_g, &mut engine_ids, &mut now_a, op, true);
            apply(&mut reference_g, &mut reference_ids, &mut now_b, op, false);
            let (a, b) = (dump(&engine_g), dump(&reference_g));
            prop_assert_eq!(&a, &b, "divergence after {:?}", op);
            for (kind_totals, kind) in
                a.3.iter()
                    .zip(ResourceKind::ALL.iter().map(Some).chain([None]))
            {
                prop_assert!(
                    kind_totals.conserved(),
                    "conservation violated for {:?} after {:?}: {:?}",
                    kind,
                    op,
                    kind_totals
                );
            }
        }
        // Drain one more long all-paths flow at the end.
        now_a += SimDuration::from_secs(3_600);
        engine_g.flow_until(now_a);
        reference_g.flow_until_reference(now_a);
        prop_assert_eq!(dump(&engine_g), dump(&reference_g));
        Ok(())
    }

    /// Ops biased toward the partitioned fast-forward: long mixed-rate
    /// flows over small balances (sources drain to zero mid-span and sit
    /// at clamp boundaries), with taps re-rated const↔proportional between
    /// spans so partitions are re-planned across rate flips.
    fn arb_partition_op() -> impl Strategy<Value = Op> {
        // (The vendored proptest stub has no weighted prop_oneof; the long
        // flows are listed twice to bias toward span execution.)
        prop_oneof![
            (0usize..8, 0usize..8, 0u64..50).prop_map(|(src, dst, mw)| Op::CreateConstTap {
                src,
                dst,
                mw
            }),
            (0usize..8, 0usize..8, 0u64..400_000).prop_map(|(src, dst, ppm)| Op::CreatePropTap {
                src,
                dst,
                ppm
            }),
            (0usize..12, 0u64..50).prop_map(|(t, mw)| Op::SetTapRateConst { t, mw }),
            (0usize..12, 0u64..400_000).prop_map(|(t, ppm)| Op::SetTapRateProp { t, ppm }),
            Just(Op::CreateReserve),
            // Small endowments, so long spans cross the drain-to-zero
            // boundary inside a planned run.
            (0usize..8, 0usize..8, 0u64..200).prop_map(|(src, dst, mj)| Op::Transfer {
                src,
                dst,
                mj
            }),
            (300u64..3_600).prop_map(|secs| Op::LongFlow { secs }),
            (300u64..3_600).prop_map(|secs| Op::LongFlow { secs }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Decay off: exercises the closed-form fast-forward heavily.
        #[test]
        fn engine_matches_reference_without_decay(
            ops in proptest::collection::vec(arb_op(), 1..40),
        ) {
            run_differential(
                GraphConfig { decay: None, ..GraphConfig::default() },
                ops,
            )?;
        }

        /// Decay on: every span runs the decay-aware SoA partition (or the
        /// indexed per-tick path for short spans).
        #[test]
        fn engine_matches_reference_with_decay(
            ops in proptest::collection::vec(arb_op(), 1..30),
        ) {
            run_differential(GraphConfig::default(), ops)?;
        }

        /// The partitioned fast-forward under adversarial shapes: mixed
        /// const/proportional multi-kind graphs where sources drain to zero
        /// mid-span and taps are re-rated between long flows.
        #[test]
        fn partitioned_fast_forward_matches_reference(
            ops in proptest::collection::vec(arb_partition_op(), 1..32),
        ) {
            run_differential(
                GraphConfig { decay: None, ..GraphConfig::default() },
                ops,
            )?;
        }

        /// Same adversarial shapes with decay on: every energy source is
        /// dynamic, quota sources keep their closed forms.
        #[test]
        fn partitioned_fast_forward_matches_reference_with_decay(
            ops in proptest::collection::vec(arb_partition_op(), 1..24),
        ) {
            run_differential(GraphConfig::default(), ops)?;
        }
    }

    /// A source that drains to zero *inside* a planned span: the island's
    /// feeder holds a finite balance with no inflow, so its taps run dry
    /// mid-hour while the rest of the graph stays closed-formed. Exercises
    /// the Covered→Dynamic demotion boundary exactly.
    #[test]
    fn source_draining_to_zero_mid_span_is_exact() {
        for decay in [None, GraphConfig::default().decay] {
            let config = GraphConfig {
                decay,
                ..GraphConfig::default()
            };
            let initial = Energy::from_joules(1_000_000);
            let mut engine_g = ResourceGraph::with_config(initial, config);
            let mut reference_g = ResourceGraph::with_config(initial, config);
            let k = Actor::kernel();
            for g in [&mut engine_g, &mut reference_g] {
                let battery = g.battery();
                // A const fan-out that never clamps (the linear partition)…
                for i in 0..20 {
                    let r = g
                        .create_reserve(&k, &format!("r{i}"), Label::default_label())
                        .unwrap();
                    g.create_tap(
                        &k,
                        &format!("t{i}"),
                        battery,
                        r,
                        RateSpec::constant(Power::from_milliwatts(1 + i)),
                        Label::default_label(),
                    )
                    .unwrap();
                }
                // …plus a finite pool that dies ~20 minutes in (500 mW from
                // a 600 J endowment), feeding a reserve with a backward
                // proportional tap: drain-to-zero *and* a proportional
                // island on the same path.
                let pool = g
                    .create_reserve(&k, "finite", Label::default_label())
                    .unwrap();
                g.transfer(&k, battery, pool, Energy::from_joules(600))
                    .unwrap();
                let sink = g
                    .create_reserve(&k, "sink", Label::default_label())
                    .unwrap();
                g.create_tap(
                    &k,
                    "dying",
                    pool,
                    sink,
                    RateSpec::constant(Power::from_milliwatts(500)),
                    Label::default_label(),
                )
                .unwrap();
                g.create_tap(
                    &k,
                    "bwd",
                    sink,
                    battery,
                    RateSpec::proportional(0.05),
                    Label::default_label(),
                )
                .unwrap();
            }
            let hour = SimTime::from_secs(3_600);
            engine_g.flow_until(hour);
            reference_g.flow_until_reference(hour);
            assert_eq!(dump(&engine_g), dump(&reference_g), "decay={decay:?}");
            assert!(engine_g.totals().conserved());
            // The finite pool really did die mid-span.
            let pool_id = engine_g
                .reserves()
                .find(|(_, r)| r.name() == "finite")
                .map(|(id, _)| id)
                .unwrap();
            assert!(!engine_g.reserve(pool_id).unwrap().balance().is_positive());
        }
    }

    /// Re-rating taps between spans re-plans the partition: a tap flipped
    /// const→proportional→const across long flows must stay exact (carry
    /// resets on re-rate are part of the contract).
    #[test]
    fn re_rated_taps_across_spans_are_exact() {
        let config = GraphConfig {
            decay: None,
            ..GraphConfig::default()
        };
        let initial = Energy::from_joules(10_000);
        let mut engine_g = ResourceGraph::with_config(initial, config);
        let mut reference_g = ResourceGraph::with_config(initial, config);
        let k = Actor::kernel();
        let mut ids = Vec::new();
        for g in [&mut engine_g, &mut reference_g] {
            let battery = g.battery();
            let a = g.create_reserve(&k, "a", Label::default_label()).unwrap();
            let t = g
                .create_tap(
                    &k,
                    "flip",
                    battery,
                    a,
                    RateSpec::constant(Power::from_milliwatts(137)),
                    Label::default_label(),
                )
                .unwrap();
            ids.push((t, a));
        }
        let rates = [
            RateSpec::proportional(0.2),
            RateSpec::constant(Power::from_microwatts(731)),
            RateSpec::Proportional { ppm_per_s: 999 },
            RateSpec::constant(Power::ZERO),
            RateSpec::constant(Power::from_milliwatts(3)),
        ];
        let mut now = SimTime::ZERO;
        for (i, &rate) in rates.iter().enumerate() {
            now += SimDuration::from_secs(600);
            engine_g.flow_until(now);
            reference_g.flow_until_reference(now);
            assert_eq!(dump(&engine_g), dump(&reference_g), "span {i}");
            engine_g.set_tap_rate(&k, ids[0].0, rate).unwrap();
            reference_g.set_tap_rate(&k, ids[1].0, rate).unwrap();
        }
        now += SimDuration::from_secs(3_600);
        engine_g.flow_until(now);
        reference_g.flow_until_reference(now);
        assert_eq!(dump(&engine_g), dump(&reference_g));
    }

    /// The acceptance-criterion scenario: 100 reserves, 200 constant taps,
    /// one hour of simulated time — engine and reference agree exactly.
    #[test]
    fn hour_long_const_graph_is_exact() {
        let config = GraphConfig {
            decay: None,
            ..GraphConfig::default()
        };
        let initial = Energy::from_joules(1_000_000);
        let mut engine_g = ResourceGraph::with_config(initial, config);
        let mut reference_g = ResourceGraph::with_config(initial, config);
        let k = Actor::kernel();
        for g in [&mut engine_g, &mut reference_g] {
            let battery = g.battery();
            let mut reserves = vec![battery];
            for i in 0..100 {
                let r = g
                    .create_reserve(&k, &format!("r{i}"), Label::default_label())
                    .unwrap();
                reserves.push(r);
            }
            for i in 0..200usize {
                // Half the taps fan out from the battery, half chain
                // between reserves (so some sources start empty and only
                // fill through upstream taps — the clamp-boundary path).
                let (src, dst) = if i % 2 == 0 {
                    (battery, reserves[1 + i / 2])
                } else {
                    (reserves[1 + (i % 100)], reserves[1 + ((i + 37) % 100)])
                };
                if src == dst {
                    continue;
                }
                g.create_tap(
                    &k,
                    &format!("t{i}"),
                    src,
                    dst,
                    RateSpec::constant(Power::from_microwatts(500 + 137 * i as u64)),
                    Label::default_label(),
                )
                .unwrap();
            }
        }
        let hour = SimTime::from_secs(3_600);
        engine_g.flow_until(hour);
        reference_g.flow_until_reference(hour);
        assert_eq!(dump(&engine_g), dump(&reference_g));
        assert!(engine_g.totals().conserved());
    }

    /// Index bookkeeping follows tap/reserve lifecycle.
    #[test]
    fn index_tracks_mutations() {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(100),
            GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
        );
        let k = Actor::kernel();
        let a = g.create_reserve(&k, "a", Label::default_label()).unwrap();
        let b = g.create_reserve(&k, "b", Label::default_label()).unwrap();
        let t1 = g
            .create_tap(
                &k,
                "t1",
                g.battery(),
                a,
                RateSpec::constant(Power::from_milliwatts(1)),
                Label::default_label(),
            )
            .unwrap();
        let _t2 = g
            .create_tap(
                &k,
                "t2",
                a,
                b,
                RateSpec::proportional(0.1),
                Label::default_label(),
            )
            .unwrap();
        assert_eq!(g.flow_index_len(), (2, 2));
        assert!(!g.flow_all_const());
        g.delete_tap(&k, t1).unwrap();
        assert_eq!(g.flow_index_len(), (1, 1));
        // Re-rating the proportional tap to const restores fast-forward
        // eligibility.
        let t2 = g.taps().next().unwrap().0;
        g.set_tap_rate(&k, t2, RateSpec::constant(Power::from_milliwatts(2)))
            .unwrap();
        assert!(g.flow_all_const());
        // Deleting a reserve GCs its taps out of the index.
        g.delete_reserve(&k, a).unwrap();
        assert_eq!(g.flow_index_len(), (0, 0));
    }
}
