//! Property tests for the resource-aware scheduler: the reserve gate is
//! never violated, and CPU shares track tap rates.

use cinder_core::{
    Actor, GraphConfig, RateSpec, ResourceGraph, ResourceScheduler, SchedulerConfig, TaskId,
};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};
use proptest::prelude::*;

const CPU: Power = Power::from_milliwatts(137);

fn graph() -> ResourceGraph {
    ResourceGraph::with_config(
        Energy::from_joules(1_000_000),
        GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
    )
}

/// Drives the scheduler loop for `secs`, returning per-task run counts.
fn drive(
    g: &mut ResourceGraph,
    s: &mut ResourceScheduler,
    tasks: &[TaskId],
    secs: u64,
) -> Vec<u64> {
    let quantum = s.quantum();
    let total = SimDuration::from_secs(secs).div_duration(quantum);
    let mut counts = vec![0u64; tasks.len()];
    let mut now = SimTime::ZERO;
    for _ in 0..total {
        g.flow_until(now);
        if let Some(picked) = s.pick_next(g) {
            // Invariant: the picked task's reserve was non-empty.
            let reserve = s.active_reserve(picked).unwrap();
            assert!(
                g.reserve(reserve).unwrap().is_nonempty(),
                "scheduler picked a task with an empty reserve"
            );
            s.charge(g, picked, now, CPU).unwrap();
            if let Some(i) = tasks.iter().position(|&t| t == picked) {
                counts[i] += 1;
            }
        }
        now += quantum;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With arbitrary tap rates whose total stays under the CPU's power,
    /// each task's CPU share tracks its own tap rate (the Fig 9/12
    /// mechanism). Rates are capped at 30 mW × ≤4 tasks = 120 mW < 137 mW.
    #[test]
    fn shares_track_tap_rates(rates_mw in proptest::collection::vec(1u64..30, 1..5)) {
        let mut g = graph();
        let mut s = ResourceScheduler::new(SchedulerConfig::default());
        let k = Actor::kernel();
        let battery = g.battery();
        let mut tasks = Vec::new();
        for (i, mw) in rates_mw.iter().enumerate() {
            let r = g
                .create_reserve(&k, &format!("r{i}"), Label::default_label())
                .unwrap();
            g.create_tap(
                &k,
                &format!("t{i}"),
                battery,
                r,
                RateSpec::constant(Power::from_milliwatts(*mw)),
                Label::default_label(),
            )
            .unwrap();
            tasks.push(s.add_task(&format!("task{i}"), r));
        }
        let secs = 60;
        let counts = drive(&mut g, &mut s, &tasks, secs);
        let quanta_per_sec = 100.0;
        for (i, mw) in rates_mw.iter().enumerate() {
            let measured_mw =
                counts[i] as f64 / (secs as f64 * quanta_per_sec) * 137.0;
            let expected = *mw as f64;
            // Within 10% relative + 3 mW absolute (startup transient).
            let tol = expected * 0.10 + 3.0;
            prop_assert!(
                (measured_mw - expected).abs() <= tol,
                "task {i}: measured {measured_mw:.1} mW for a {expected} mW tap"
            );
        }
    }

    /// Unfunded tasks never run, funded ones always make progress, and
    /// total charged energy equals quanta × quantum cost exactly.
    #[test]
    fn charging_is_exact(funded in proptest::collection::vec(any::<bool>(), 1..6)) {
        let mut g = graph();
        let mut s = ResourceScheduler::new(SchedulerConfig::default());
        let k = Actor::kernel();
        let battery = g.battery();
        let mut tasks = Vec::new();
        for (i, f) in funded.iter().enumerate() {
            let r = g
                .create_reserve(&k, &format!("r{i}"), Label::default_label())
                .unwrap();
            if *f {
                g.transfer(&k, battery, r, Energy::from_joules(100)).unwrap();
            }
            tasks.push(s.add_task(&format!("task{i}"), r));
        }
        let counts = drive(&mut g, &mut s, &tasks, 5);
        let quantum_cost = CPU.energy_over(SimDuration::from_millis(10));
        for (i, f) in funded.iter().enumerate() {
            if *f {
                prop_assert!(counts[i] > 0, "funded task {i} starved");
            } else {
                prop_assert_eq!(counts[i], 0, "unfunded task {} ran", i);
            }
            prop_assert_eq!(s.consumed(tasks[i]), quantum_cost * counts[i] as i64);
        }
        prop_assert!(g.totals().conserved());
    }

    /// Oversubscription: when total tap demand exceeds the CPU, the CPU
    /// saturates (≈100% duty) and no task exceeds its own tap rate.
    #[test]
    // Per-task floor of 75 mW keeps even the 2-task draw (≥150 mW) above
    // the 137 mW CPU: with total inflow *below* CPU power, saturation is
    // arithmetically impossible and the old 60 mW floor made randomized
    // runs flaky.
    fn oversubscribed_cpu_saturates(rates_mw in proptest::collection::vec(75u64..137, 2..5)) {
        let mut g = graph();
        let mut s = ResourceScheduler::new(SchedulerConfig::default());
        let k = Actor::kernel();
        let battery = g.battery();
        let mut tasks = Vec::new();
        for (i, mw) in rates_mw.iter().enumerate() {
            let r = g
                .create_reserve(&k, &format!("r{i}"), Label::default_label())
                .unwrap();
            g.create_tap(
                &k,
                &format!("t{i}"),
                battery,
                r,
                RateSpec::constant(Power::from_milliwatts(*mw)),
                Label::default_label(),
            )
            .unwrap();
            tasks.push(s.add_task(&format!("task{i}"), r));
        }
        let secs = 30;
        let counts = drive(&mut g, &mut s, &tasks, secs);
        let total: u64 = counts.iter().sum();
        let quanta = secs * 100;
        prop_assert!(
            total as f64 >= quanta as f64 * 0.97,
            "CPU should saturate: {total}/{quanta}"
        );
        for (i, mw) in rates_mw.iter().enumerate() {
            let measured_mw = counts[i] as f64 / quanta as f64 * 137.0;
            prop_assert!(
                measured_mw <= *mw as f64 + 5.0,
                "task {i} exceeded its tap: {measured_mw:.1} mW > {mw} mW"
            );
        }
    }

    /// Round-robin fairness: equally funded tasks get equal shares within
    /// one quantum of each other.
    #[test]
    fn equal_funding_equal_shares(n in 1usize..6) {
        let mut g = graph();
        let mut s = ResourceScheduler::new(SchedulerConfig::default());
        let k = Actor::kernel();
        let battery = g.battery();
        let mut tasks = Vec::new();
        for i in 0..n {
            let r = g
                .create_reserve(&k, &format!("r{i}"), Label::default_label())
                .unwrap();
            g.transfer(&k, battery, r, Energy::from_joules(1_000)).unwrap();
            tasks.push(s.add_task(&format!("task{i}"), r));
        }
        let counts = drive(&mut g, &mut s, &tasks, 10);
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unfair shares: {counts:?}");
    }
}

#[test]
fn throttled_quanta_count_denials() {
    let mut g = graph();
    let mut s = ResourceScheduler::new(SchedulerConfig::default());
    let k = Actor::kernel();
    let r = g
        .create_reserve(&k, "starved", Label::default_label())
        .unwrap();
    let t = s.add_task("starved", r);
    for _ in 0..50 {
        assert_eq!(s.pick_next(&g), None);
    }
    assert_eq!(s.throttled_quanta(t), 50);
}
