//! Property tests for typed resource kinds (§9 made first-class).
//!
//! Cross-kind operations — `create_tap`, `transfer`, `reserve_clone_as` —
//! must fail with the typed [`GraphError::KindMismatch`] and leave the
//! per-kind conservation totals (`injected == Σ balances + consumed`,
//! per [`ResourceKind`]) untouched, to the grain.

use cinder_core::{
    Actor, GraphConfig, GraphError, Quantity, Rate, RateSpec, ReserveId, ResourceGraph,
    ResourceKind,
};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};
use proptest::prelude::*;

/// A graph with all three kinds rooted and one funded reserve per kind.
fn tri_kind_graph() -> (ResourceGraph, Vec<(ResourceKind, ReserveId)>) {
    let mut g = ResourceGraph::with_config(
        Energy::from_joules(1_000),
        GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
    );
    let k = Actor::kernel();
    g.create_root(&k, "byte-pool", Quantity::network_bytes(10_000_000))
        .unwrap();
    g.create_root(&k, "sms-pool", Quantity::sms_messages(500))
        .unwrap();
    let mut reserves = Vec::new();
    for kind in ResourceKind::ALL {
        let r = g
            .create_reserve_kind(&k, &format!("{kind}"), Label::default_label(), kind)
            .unwrap();
        let root = g.root(kind).unwrap();
        g.transfer(&k, root, r, Energy::from_millijoules(100))
            .unwrap();
        reserves.push((kind, r));
    }
    (g, reserves)
}

fn all_totals(g: &ResourceGraph) -> Vec<(ResourceKind, Energy, Energy, Energy)> {
    ResourceKind::ALL
        .iter()
        .map(|&k| {
            let t = g.totals_for(k);
            (k, t.injected, t.balances, t.consumed)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `create_tap` across kinds fails with the typed error — for every
    /// ordered kind pair, rate shape, and direction — without moving a
    /// grain of any kind.
    #[test]
    fn cross_kind_taps_are_rejected(
        src in 0usize..3,
        dst in 0usize..3,
        mw in 0u64..2_000,
        proportional in any::<bool>(),
    ) {
        let (mut g, reserves) = tri_kind_graph();
        let k = Actor::kernel();
        let before = all_totals(&g);
        let (src_kind, src_id) = reserves[src];
        let (dst_kind, dst_id) = reserves[dst];
        let rate = if proportional {
            RateSpec::proportional(0.1)
        } else {
            RateSpec::constant(Power::from_milliwatts(mw))
        };
        let result = g.create_tap(&k, "t", src_id, dst_id, rate, Label::default_label());
        if src_id == dst_id {
            prop_assert_eq!(result.unwrap_err(), GraphError::SameReserve);
        } else if src_kind == dst_kind {
            prop_assert!(result.is_ok());
        } else {
            prop_assert_eq!(
                result.unwrap_err(),
                GraphError::KindMismatch {
                    op: "create_tap",
                    expected: src_kind,
                    found: dst_kind,
                }
            );
            prop_assert_eq!(g.tap_count(), 0, "failed tap must not be registered");
        }
        // Even a *successful* tap creation moves nothing until flow runs;
        // a failed one must leave every kind's totals untouched.
        prop_assert_eq!(all_totals(&g), before);
        for kind in ResourceKind::ALL {
            prop_assert!(g.totals_for(kind).conserved());
        }
    }

    /// `transfer` across kinds fails with the typed error and leaves every
    /// kind's totals untouched; same-kind transfers succeed and conserve.
    #[test]
    fn cross_kind_transfers_are_rejected(
        src in 0usize..3,
        dst in 0usize..3,
        grains in 1i64..100_000,
    ) {
        let (mut g, reserves) = tri_kind_graph();
        let k = Actor::kernel();
        let before = all_totals(&g);
        let (src_kind, src_id) = reserves[src];
        let (dst_kind, dst_id) = reserves[dst];
        let amount = Energy::from_microjoules(grains);
        let result = g.transfer(&k, src_id, dst_id, amount);
        if src_id == dst_id {
            prop_assert_eq!(result.unwrap_err(), GraphError::SameReserve);
            prop_assert_eq!(all_totals(&g), before);
        } else if src_kind != dst_kind {
            prop_assert_eq!(
                result.unwrap_err(),
                GraphError::KindMismatch {
                    op: "transfer",
                    expected: src_kind,
                    found: dst_kind,
                }
            );
            prop_assert_eq!(all_totals(&g), before);
        } else {
            prop_assert!(result.is_ok(), "funded same-kind transfer succeeds");
        }
        for kind in ResourceKind::ALL {
            prop_assert!(g.totals_for(kind).conserved());
        }
    }

    /// `reserve_clone_as` with any kind other than the original's fails
    /// with the typed error, creates nothing, and leaves totals untouched.
    #[test]
    fn cross_kind_reserve_clones_are_rejected(
        src in 0usize..3,
        clone_kind in 0usize..3,
    ) {
        let (mut g, reserves) = tri_kind_graph();
        let k = Actor::kernel();
        // Give the source a backward-proportional tap so a successful clone
        // has something to inherit.
        let (src_kind, src_id) = reserves[src];
        let root = g.root(src_kind).unwrap();
        g.create_tap(
            &k,
            "bwd",
            src_id,
            root,
            RateSpec::proportional(0.1),
            Label::default_label(),
        )
        .unwrap();
        let before = all_totals(&g);
        let reserves_before = g.reserve_count();
        let taps_before = g.tap_count();
        let kind = ResourceKind::ALL[clone_kind];
        let result = g.reserve_clone_as(&k, src_id, "clone", Label::default_label(), kind);
        if kind == src_kind {
            prop_assert!(result.is_ok());
            prop_assert_eq!(g.tap_count(), taps_before, "kernel actor may remove the tap, so nothing is inherited");
        } else {
            prop_assert_eq!(
                result.unwrap_err(),
                GraphError::KindMismatch {
                    op: "reserve_clone",
                    expected: src_kind,
                    found: kind,
                }
            );
            prop_assert_eq!(g.reserve_count(), reserves_before, "failed clone creates nothing");
            prop_assert_eq!(g.tap_count(), taps_before);
            prop_assert_eq!(all_totals(&g), before);
        }
        for kind in ResourceKind::ALL {
            prop_assert!(g.totals_for(kind).conserved());
        }
    }

    /// Typed quantities applied to reserves of a different kind fail with
    /// the typed error — the µJ pun cannot be smuggled back through the
    /// typed boundary.
    #[test]
    fn typed_amounts_must_match_reserve_kind(
        target in 0usize..3,
        qty_kind in 0usize..3,
        grains in 1u64..1_000,
    ) {
        let (mut g, reserves) = tri_kind_graph();
        let k = Actor::kernel();
        let (reserve_kind, id) = reserves[target];
        let kind = ResourceKind::ALL[qty_kind];
        let q = Quantity::new(kind, Energy::from_microjoules(grains as i64));
        let before = all_totals(&g);
        let result = g.consume_typed(&k, id, q);
        if kind == reserve_kind {
            prop_assert!(result.is_ok());
        } else {
            let is_kind_mismatch = matches!(
                result.unwrap_err(),
                GraphError::KindMismatch { op: "consume", .. }
            );
            prop_assert!(is_kind_mismatch);
            prop_assert_eq!(all_totals(&g), before);
        }
        for kind in ResourceKind::ALL {
            prop_assert!(g.totals_for(kind).conserved());
        }
    }

    /// Per-kind conservation through a mixed multi-kind workload: flows,
    /// transfers, consumption, and debt across all three kinds at once.
    #[test]
    fn per_kind_conservation_through_mixed_workload(
        ops in proptest::collection::vec((0usize..3, 0u64..2_000, 1u64..5_000), 1..40),
    ) {
        let (mut g, reserves) = tri_kind_graph();
        let k = Actor::kernel();
        // One forward tap per kind, root → reserve.
        for &(kind, r) in &reserves {
            let root = g.root(kind).unwrap();
            g.create_tap(
                &k,
                "feed",
                root,
                r,
                RateSpec::constant(Power::from_microwatts(37_500)),
                Label::default_label(),
            )
            .unwrap();
        }
        let mut now = SimTime::ZERO;
        for (which, grains, ms) in ops {
            now += SimDuration::from_millis(ms);
            g.flow_until(now);
            let (_, r) = reserves[which];
            let amount = Energy::from_microjoules(grains as i64);
            if grains % 3 == 0 {
                let _ = g.consume_with_debt(&k, r, amount);
            } else {
                let _ = g.consume(&k, r, amount);
            }
            for kind in ResourceKind::ALL {
                prop_assert!(
                    g.totals_for(kind).conserved(),
                    "kind {kind} violated at {now:?}: {:?}",
                    g.totals_for(kind)
                );
            }
            prop_assert!(g.totals().conserved(), "global sum conserves too");
        }
    }
}

/// The typed rate boundary: a byte rate cannot feed an energy tap.
#[test]
fn typed_rate_must_match_source_kind() {
    let (mut g, reserves) = tri_kind_graph();
    let k = Actor::kernel();
    let (_, energy_r) = reserves[ResourceKind::Energy.index()];
    let err = g
        .create_tap_typed(
            &k,
            "bad",
            g.battery(),
            energy_r,
            Rate::bytes_per_sec(1_000),
            Label::default_label(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        GraphError::KindMismatch {
            op: "create_tap",
            expected: ResourceKind::Energy,
            found: ResourceKind::NetworkBytes,
        }
    );
    // The matching typed rate works.
    let bytes_root = g.root(ResourceKind::NetworkBytes).unwrap();
    let (_, bytes_r) = reserves[ResourceKind::NetworkBytes.index()];
    g.create_tap_typed(
        &k,
        "ok",
        bytes_root,
        bytes_r,
        Rate::bytes_per_sec(1_000),
        Label::default_label(),
    )
    .unwrap();
}

/// Deleting a quota reserve settles its balance (or debt) against the root
/// of its own kind, keeping every kind's totals conserved.
#[test]
fn delete_settles_to_same_kind_root() {
    let (mut g, reserves) = tri_kind_graph();
    let k = Actor::kernel();
    let (_, bytes_r) = reserves[ResourceKind::NetworkBytes.index()];
    let root = g.root(ResourceKind::NetworkBytes).unwrap();
    let root_before = g.level(&k, root).unwrap();
    // Drive it into debt, then delete: the byte root absorbs the debt.
    g.consume_with_debt(&k, bytes_r, Energy::from_millijoules(200))
        .unwrap();
    let settled = g.delete_reserve(&k, bytes_r).unwrap();
    assert!(settled.is_negative());
    assert_eq!(
        g.level(&k, root).unwrap(),
        root_before + settled,
        "byte root pays byte debt"
    );
    for kind in ResourceKind::ALL {
        assert!(g.totals_for(kind).conserved(), "{kind} conserved");
    }
    // Roots themselves are not deletable.
    assert!(matches!(
        g.delete_reserve(&k, root),
        Err(GraphError::RootReserve)
    ));
}
