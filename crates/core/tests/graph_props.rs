//! Property tests for the resource consumption graph.
//!
//! The central invariant: **energy is conserved exactly**. Whatever random
//! topology of reserves and taps is built, however flows/transfers/consumes
//! interleave, `injected == Σ balances + consumed` holds to the microjoule.

use cinder_core::{Actor, GraphConfig, RateSpec, ReserveId, ResourceGraph};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};
use proptest::prelude::*;

/// A randomised graph operation.
#[derive(Debug, Clone)]
enum Op {
    CreateReserve,
    CreateConstTap { src: usize, dst: usize, mw: u64 },
    CreatePropTap { src: usize, dst: usize, ppm: u64 },
    Transfer { src: usize, dst: usize, mj: u64 },
    Consume { r: usize, mj: u64 },
    ConsumeWithDebt { r: usize, mj: u64 },
    DeleteReserve { r: usize },
    Flow { ms: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::CreateReserve),
        (0usize..8, 0usize..8, 0u64..2_000).prop_map(|(src, dst, mw)| Op::CreateConstTap {
            src,
            dst,
            mw
        }),
        (0usize..8, 0usize..8, 0u64..1_000_000).prop_map(|(src, dst, ppm)| Op::CreatePropTap {
            src,
            dst,
            ppm
        }),
        (0usize..8, 0usize..8, 0u64..5_000).prop_map(|(src, dst, mj)| Op::Transfer {
            src,
            dst,
            mj
        }),
        (0usize..8, 0u64..5_000).prop_map(|(r, mj)| Op::Consume { r, mj }),
        (0usize..8, 0u64..5_000).prop_map(|(r, mj)| Op::ConsumeWithDebt { r, mj }),
        (1usize..8).prop_map(|r| Op::DeleteReserve { r }),
        (1u64..5_000).prop_map(|ms| Op::Flow { ms }),
    ]
}

/// Applies ops to a graph, tolerating expected errors (insufficient funds,
/// stale ids), and asserts conservation after every step.
fn run_ops(mut g: ResourceGraph, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let k = Actor::kernel();
    let mut ids: Vec<ReserveId> = vec![g.battery()];
    let mut now = SimTime::ZERO;
    for op in ops {
        match op {
            Op::CreateReserve => {
                let id = g
                    .create_reserve(&k, "r", Label::default_label())
                    .expect("kernel create cannot fail");
                ids.push(id);
            }
            Op::CreateConstTap { src, dst, mw } => {
                let s = ids[src % ids.len()];
                let d = ids[dst % ids.len()];
                let _ = g.create_tap(
                    &k,
                    "t",
                    s,
                    d,
                    RateSpec::constant(Power::from_milliwatts(mw)),
                    Label::default_label(),
                );
            }
            Op::CreatePropTap { src, dst, ppm } => {
                let s = ids[src % ids.len()];
                let d = ids[dst % ids.len()];
                let _ = g.create_tap(
                    &k,
                    "p",
                    s,
                    d,
                    RateSpec::Proportional { ppm_per_s: ppm },
                    Label::default_label(),
                );
            }
            Op::Transfer { src, dst, mj } => {
                let s = ids[src % ids.len()];
                let d = ids[dst % ids.len()];
                let _ = g.transfer(&k, s, d, Energy::from_millijoules(mj as i64));
            }
            Op::Consume { r, mj } => {
                let id = ids[r % ids.len()];
                let _ = g.consume(&k, id, Energy::from_millijoules(mj as i64));
            }
            Op::ConsumeWithDebt { r, mj } => {
                let id = ids[r % ids.len()];
                let _ = g.consume_with_debt(&k, id, Energy::from_millijoules(mj as i64));
            }
            Op::DeleteReserve { r } => {
                if ids.len() > 1 {
                    let idx = 1 + (r % (ids.len() - 1));
                    let id = ids.remove(idx);
                    let _ = g.delete_reserve(&k, id);
                }
            }
            Op::Flow { ms } => {
                now += SimDuration::from_millis(ms);
                g.flow_until(now);
            }
        }
        let t = g.totals();
        prop_assert!(
            t.conserved(),
            "conservation violated after {op:?}: injected={:?} balances={:?} consumed={:?}",
            t.injected,
            t.balances,
            t.consumed
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_with_decay(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let g = ResourceGraph::new(Energy::from_joules(15_000));
        run_ops(g, ops)?;
    }

    #[test]
    fn conservation_without_decay(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let g = ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig { decay: None, ..GraphConfig::default() },
        );
        run_ops(g, ops)?;
    }

    #[test]
    fn conservation_in_strict_mode(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let g = ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig { strict_anti_hoarding: true, ..GraphConfig::default() },
        );
        run_ops(g, ops)?;
    }

    /// Taps never manufacture energy: with no consumption, a fully-connected
    /// random tap mesh leaves the total balance exactly equal to the initial
    /// injection.
    #[test]
    fn tap_mesh_preserves_total(
        taps in proptest::collection::vec((0usize..5, 0usize..5, 0u64..3_000), 0..15),
        secs in 1u64..120,
    ) {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(100),
            GraphConfig { decay: None, ..GraphConfig::default() },
        );
        let k = Actor::kernel();
        let mut ids = vec![g.battery()];
        for i in 0..4 {
            ids.push(g.create_reserve(&k, &format!("r{i}"), Label::default_label()).unwrap());
        }
        for (s, d, mw) in taps {
            let _ = g.create_tap(
                &k,
                "t",
                ids[s % ids.len()],
                ids[d % ids.len()],
                RateSpec::constant(Power::from_milliwatts(mw)),
                Label::default_label(),
            );
        }
        g.flow_until(SimTime::from_secs(secs));
        let t = g.totals();
        prop_assert_eq!(t.balances, Energy::from_joules(100));
        prop_assert_eq!(t.consumed, Energy::ZERO);
    }

    /// A reserve fed only by a constant tap never exceeds rate × time.
    #[test]
    fn const_tap_rate_is_an_upper_bound(mw in 1u64..5_000, secs in 1u64..600) {
        let mut g = ResourceGraph::with_config(
            Energy::from_joules(15_000),
            GraphConfig { decay: None, ..GraphConfig::default() },
        );
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "r", Label::default_label()).unwrap();
        g.create_tap(
            &k,
            "t",
            g.battery(),
            r,
            RateSpec::constant(Power::from_milliwatts(mw)),
            Label::default_label(),
        ).unwrap();
        g.flow_until(SimTime::from_secs(secs));
        let level = g.level(&k, r).unwrap();
        let bound = Power::from_milliwatts(mw).energy_over(SimDuration::from_secs(secs));
        prop_assert!(level <= bound, "level {level:?} > bound {bound:?}");
        // And it is within one tick of the bound (no systematic loss).
        let one_tick = Power::from_milliwatts(mw).energy_over(SimDuration::from_millis(100));
        prop_assert!(bound - level <= one_tick + Energy::from_microjoules(1));
    }

    /// Decay only ever moves energy back to the battery: an untouched
    /// reserve's balance is non-increasing and never negative.
    #[test]
    fn decay_is_monotone_and_bounded(start_j in 1i64..1_000, steps in 1u64..50) {
        let mut g = ResourceGraph::new(Energy::from_joules(15_000));
        let k = Actor::kernel();
        let r = g.create_reserve(&k, "idle", Label::default_label()).unwrap();
        g.transfer(&k, g.battery(), r, Energy::from_joules(start_j)).unwrap();
        let mut prev = g.level(&k, r).unwrap();
        for i in 1..=steps {
            g.flow_until(SimTime::from_secs(i * 30));
            let cur = g.level(&k, r).unwrap();
            prop_assert!(cur <= prev);
            prop_assert!(!cur.is_negative());
            prev = cur;
        }
        prop_assert!(g.totals().conserved());
    }
}
