//! The cloud-offload economy: a deterministic shared backend and the
//! per-task break-even policy that prices CPU joules against radio joules.
//!
//! The paper makes energy a schedulable resource; *Enhanced Mobile
//! Computing Experience with Cloud Offloading* (Qian, see PAPERS.md) names
//! the workload axis that model prices naturally — shipping a task's
//! remaining work to a backend trades local CPU joules for radio joules
//! plus `NetworkBytes` from the data plan. This crate supplies the two
//! pure, kernel-independent pieces:
//!
//! * [`BackendQueue`] / [`BackendTrace`]: a finite-capacity FIFO service
//!   advanced in simulated time. The trace form is *mean-field*: it drives
//!   one queue with the aggregate arrival stream of a configured device
//!   population ([`OffloadProfile::load_devices`]), gated by the queue's
//!   own latency estimate — saturation stretches latency, latency shifts
//!   the break-even, load falls back to devices. Because the trace is a
//!   pure function of the profile and horizon, every simulated device (on
//!   any worker thread) observes the identical backend, which is what
//!   keeps fleet reports byte-identical for any worker count.
//! * [`break_even`]: the per-item local-vs-remote decision as a pure
//!   function over observable state (reserve level, marginal radio cost,
//!   live latency estimate, bytes remaining in the plan).
//!
//! The kernel half — the `offload` syscall, blocking/wake semantics, and
//! billing through the typed graph — lives in `cinder-kernel`; the
//! `Offloader` workload in `cinder-apps` glues the two together.

pub mod policy;
pub mod queue;
pub mod trace;

pub use policy::{break_even, BreakEvenInputs, OffloadDecision};
pub use queue::{BackendQueue, BatchOutcome, QueueParams, QueueStats};
pub use trace::{BackendTrace, EpochSample, OffloadProfile};
