//! The per-item break-even policy.
//!
//! Deciding local-vs-remote is a *pure function over observable state* —
//! no hidden counters, no randomness — so the decision is reproducible
//! from a device report and testable at exact boundaries. The inputs are
//! precisely what the kernel exposes to a thread: its reserve level, the
//! radio's marginal cost for the round trip (activation or plateau
//! extension plus per-byte data energy), the accounting cost of computing
//! locally, the backend's live latency estimate, and the data plan's
//! remaining bytes.

use cinder_sim::{Energy, SimDuration};

/// Where a work item runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadDecision {
    /// Compute on-device.
    Local,
    /// Ship to the backend.
    Remote,
}

/// Everything the decision reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakEvenInputs {
    /// The thread's energy reserve balance.
    pub reserve_level: Energy,
    /// CPU energy to compute the item locally (accounting power × work).
    pub local_cost: Energy,
    /// Marginal radio energy for the round trip at the radio's current
    /// state: a cold radio prices in the ~9.5 J activation, a warm one
    /// only the plateau extension plus data energy.
    pub remote_cost: Energy,
    /// The backend's live latency estimate.
    pub latency_estimate: SimDuration,
    /// Client deadline: estimates at or past this make remote pointless
    /// (the fallback would recompute locally anyway).
    pub deadline: SimDuration,
    /// Bytes left in the data plan (`None` = unrestricted).
    pub plan_bytes_remaining: Option<u64>,
    /// Bytes the round trip would consume from the plan (tx + rx).
    pub round_trip_bytes: u64,
}

/// The break-even rule. In order:
///
/// 1. A dead (non-positive) reserve cannot fund a radio episode — local.
/// 2. An exhausted byte plan cannot cover the round trip — local
///    (mirrors the kernel's `net_send` byte-quota gate, §9).
/// 3. A latency estimate at or past the deadline predicts a timeout whose
///    fallback recomputes locally — skip the wasted radio joules.
/// 4. Otherwise offload exactly when the radio's marginal cost undercuts
///    the local CPU cost; ties stay local (the device keeps its data).
pub fn break_even(i: &BreakEvenInputs) -> OffloadDecision {
    if !i.reserve_level.is_positive() {
        return OffloadDecision::Local;
    }
    if let Some(remaining) = i.plan_bytes_remaining {
        if remaining < i.round_trip_bytes {
            return OffloadDecision::Local;
        }
    }
    if i.latency_estimate >= i.deadline {
        return OffloadDecision::Local;
    }
    if i.remote_cost < i.local_cost {
        OffloadDecision::Remote
    } else {
        OffloadDecision::Local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_sim::Power;

    fn base() -> BreakEvenInputs {
        BreakEvenInputs {
            reserve_level: Energy::from_joules(20),
            local_cost: Energy::from_joules(16),
            remote_cost: Energy::from_joules(9),
            latency_estimate: SimDuration::from_millis(100),
            deadline: SimDuration::from_secs(5),
            plan_bytes_remaining: Some(1_000_000),
            round_trip_bytes: 2_500,
        }
    }

    #[test]
    fn cheaper_radio_offloads() {
        assert_eq!(break_even(&base()), OffloadDecision::Remote);
    }

    #[test]
    fn cost_boundary_is_exact_and_ties_stay_local() {
        let mut i = base();
        i.local_cost = Energy::from_microjoules(1_000_000);
        i.remote_cost = Energy::from_microjoules(1_000_000);
        assert_eq!(break_even(&i), OffloadDecision::Local, "tie is local");
        i.remote_cost = Energy::from_microjoules(999_999);
        assert_eq!(break_even(&i), OffloadDecision::Remote, "one µJ tips it");
    }

    #[test]
    fn cold_radio_crossover_matches_paper_numbers() {
        // Cold HTC Dream radio: ~9.5 J activation + 2500 B × 2.5 mJ/kB
        // data = 9.506250 J. At the 137 mW accounting power that buys
        // 69_388 ms of local CPU: one quantum less computes locally, one
        // more offloads.
        let remote = Energy::from_microjoules(9_500_000 + 6_250);
        let cpu = Power::from_milliwatts(137);
        let mut i = base();
        i.remote_cost = remote;
        i.local_cost = cpu.energy_over(SimDuration::from_millis(69_380));
        assert_eq!(break_even(&i), OffloadDecision::Local);
        i.local_cost = cpu.energy_over(SimDuration::from_millis(69_390));
        assert_eq!(break_even(&i), OffloadDecision::Remote);
    }

    #[test]
    fn dead_reserve_is_always_local() {
        let mut i = base();
        i.reserve_level = Energy::ZERO;
        assert_eq!(break_even(&i), OffloadDecision::Local);
        i.reserve_level = Energy::from_joules(-1);
        assert_eq!(break_even(&i), OffloadDecision::Local);
        // Even when remote is free.
        i.remote_cost = Energy::ZERO;
        assert_eq!(break_even(&i), OffloadDecision::Local);
    }

    #[test]
    fn exhausted_plan_is_always_local() {
        let mut i = base();
        i.plan_bytes_remaining = Some(2_499);
        assert_eq!(break_even(&i), OffloadDecision::Local);
        i.plan_bytes_remaining = Some(2_500);
        assert_eq!(break_even(&i), OffloadDecision::Remote, "exact cover ok");
        i.plan_bytes_remaining = None;
        assert_eq!(break_even(&i), OffloadDecision::Remote, "no plan, no gate");
    }

    #[test]
    fn slow_backend_is_local() {
        let mut i = base();
        i.latency_estimate = SimDuration::from_secs(5);
        assert_eq!(
            break_even(&i),
            OffloadDecision::Local,
            "estimate == deadline"
        );
        i.latency_estimate = SimDuration::from_secs(4);
        assert_eq!(break_even(&i), OffloadDecision::Remote);
    }
}
