//! The deterministic backend service queue.
//!
//! A finite pool of `capacity` identical servers drains a bounded FIFO of
//! fixed-service-time requests. The model is *fluid at batch granularity*:
//! arrivals come in batches (the trace offers one batch per epoch), every
//! request in a batch shares the completion time of the batch's last
//! request, and queued work drains at `capacity` server-microseconds per
//! microsecond. All arithmetic is integer microseconds, so two queues fed
//! the same offers are bit-identical — the property the fleet's
//! worker-count determinism tests lean on.

use std::collections::VecDeque;

use cinder_sim::{SimDuration, SimTime};

/// Backend sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueParams {
    /// Parallel servers (the capacity the `fig_offload` sweep varies).
    pub capacity: u32,
    /// Maximum requests in flight (in service + waiting); offers beyond
    /// this are rejected at admission.
    pub queue_limit: u32,
    /// Service time per request on one server.
    pub service: SimDuration,
}

/// Conservation counters. Every offered request ends in exactly one of
/// the four terminal/live buckets; [`QueueStats::conserved`] checks it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests ever offered.
    pub offered: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Admitted requests that completed within their client deadline.
    pub completed: u64,
    /// Admitted requests whose response landed after the client deadline
    /// (the client fell back to local execution; the server work was
    /// wasted).
    pub timed_out: u64,
}

impl QueueStats {
    /// Admitted requests still in the queue or in service.
    pub fn in_flight(&self) -> u64 {
        self.admitted - self.completed - self.timed_out
    }

    /// The conservation invariant: every request offered was either
    /// rejected or admitted, and every admitted request is completed,
    /// timed out, or still in flight.
    pub fn conserved(&self) -> bool {
        self.offered == self.admitted + self.rejected
            && self.admitted >= self.completed + self.timed_out
    }
}

/// One batch's admission outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests admitted from the batch.
    pub admitted: u64,
    /// Requests rejected (queue full).
    pub rejected: u64,
    /// Backend latency (queue wait + service) of the batch's last request;
    /// for a fully rejected batch, the latency a request *would* have seen.
    pub latency: SimDuration,
    /// Whether that latency exceeds the client deadline the batch carried.
    pub timed_out: bool,
}

/// A batch awaiting completion.
#[derive(Debug, Clone, Copy)]
struct Pending {
    complete_at: SimTime,
    count: u64,
    timed_out: bool,
}

/// The backend queue, advanced explicitly in simulated time.
#[derive(Debug, Clone)]
pub struct BackendQueue {
    params: QueueParams,
    now: SimTime,
    /// Unfinished admitted work in server-microseconds; drains at
    /// `capacity` per elapsed microsecond.
    backlog_server_us: u64,
    pending: VecDeque<Pending>,
    stats: QueueStats,
}

impl BackendQueue {
    /// Creates an empty queue at t = 0.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity, limit, or service time — a backend that
    /// can serve nothing is a configuration error, not a scenario.
    pub fn new(params: QueueParams) -> Self {
        assert!(params.capacity > 0, "backend needs at least one server");
        assert!(params.queue_limit > 0, "backend needs a non-empty queue");
        assert!(!params.service.is_zero(), "service time must be positive");
        BackendQueue {
            params,
            now: SimTime::ZERO,
            backlog_server_us: 0,
            pending: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// The sizing this queue was built with.
    pub fn params(&self) -> QueueParams {
        self.params
    }

    /// Conservation counters as of the last `advance_to`/`offer`.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drains work and records completions up to `t` (monotonic; earlier
    /// times are ignored).
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        let dt = t.since(self.now).as_micros();
        self.backlog_server_us = self
            .backlog_server_us
            .saturating_sub(dt.saturating_mul(self.params.capacity as u64));
        self.now = t;
        while let Some(front) = self.pending.front() {
            if front.complete_at > t {
                break;
            }
            let done = self.pending.pop_front().expect("front exists");
            if done.timed_out {
                self.stats.timed_out += done.count;
            } else {
                self.stats.completed += done.count;
            }
        }
    }

    /// The backend latency one more request admitted now would see:
    /// current queue wait plus one service time.
    pub fn latency_estimate(&self) -> SimDuration {
        SimDuration::from_micros(self.wait_us()) + self.params.service
    }

    /// Current queue wait in microseconds (time for the standing backlog
    /// to drain across all servers).
    fn wait_us(&self) -> u64 {
        let c = self.params.capacity as u64;
        self.backlog_server_us.div_ceil(c)
    }

    /// Offers a batch of `count` requests at time `t`, each carrying the
    /// client `deadline`. Admits up to the free queue space, rejects the
    /// rest, and schedules the admitted work's completion.
    pub fn offer(&mut self, t: SimTime, count: u64, deadline: SimDuration) -> BatchOutcome {
        self.advance_to(t);
        let space = (self.params.queue_limit as u64).saturating_sub(self.stats.in_flight());
        let admitted = count.min(space);
        let rejected = count - admitted;
        self.stats.offered += count;
        self.stats.rejected += rejected;
        let c = self.params.capacity as u64;
        let wait = SimDuration::from_micros(self.wait_us());
        // The batch waits for the standing backlog, then streams through
        // `capacity` servers one round at a time: round k's requests
        // complete (and are individually deadline-classified) at
        // wait + k × service. The batch outcome reports the *last*
        // request's latency — what a device arriving with the crowd sees.
        let batch_rounds = admitted.max(1).div_ceil(c);
        let latency = wait + self.params.service * batch_rounds;
        let timed_out = latency > deadline;
        if admitted > 0 {
            self.stats.admitted += admitted;
            self.backlog_server_us += admitted * self.params.service.as_micros();
            let mut remaining = admitted;
            for k in 1..=batch_rounds {
                let count = remaining.min(c);
                remaining -= count;
                let round_latency = wait + self.params.service * k;
                self.pending.push_back(Pending {
                    complete_at: t + round_latency,
                    count,
                    timed_out: round_latency > deadline,
                });
            }
        }
        BatchOutcome {
            admitted,
            rejected,
            latency,
            timed_out,
        }
    }

    /// Advances far enough past `t` that every admitted request has
    /// completed, and returns the final counters. Used by the trace to
    /// settle totals at the end of a horizon.
    pub fn drain_after(&mut self, t: SimTime) -> QueueStats {
        let tail = SimDuration::from_micros(self.wait_us()) + self.params.service;
        self.advance_to(t + tail + self.params.service);
        debug_assert_eq!(self.stats.in_flight(), 0, "drain left work in flight");
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(capacity: u32, queue_limit: u32, service_ms: u64) -> QueueParams {
        QueueParams {
            capacity,
            queue_limit,
            service: SimDuration::from_millis(service_ms),
        }
    }

    #[test]
    fn empty_queue_latency_is_one_service_time() {
        let q = BackendQueue::new(params(4, 100, 50));
        assert_eq!(q.latency_estimate(), SimDuration::from_millis(50));
    }

    #[test]
    fn single_request_completes_after_service() {
        let mut q = BackendQueue::new(params(4, 100, 50));
        let out = q.offer(SimTime::from_secs(1), 1, SimDuration::from_secs(5));
        assert_eq!(out.admitted, 1);
        assert_eq!(out.latency, SimDuration::from_millis(50));
        assert!(!out.timed_out);
        q.advance_to(SimTime::from_secs(1) + SimDuration::from_millis(49));
        assert_eq!(q.stats().completed, 0);
        q.advance_to(SimTime::from_secs(1) + SimDuration::from_millis(50));
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.stats().in_flight(), 0);
    }

    #[test]
    fn batch_streams_through_servers() {
        // 10 requests on 4 servers at 50 ms each: 3 rounds = 150 ms.
        let mut q = BackendQueue::new(params(4, 100, 50));
        let out = q.offer(SimTime::ZERO, 10, SimDuration::from_secs(5));
        assert_eq!(out.latency, SimDuration::from_millis(150));
    }

    #[test]
    fn standing_backlog_stretches_latency() {
        let mut q = BackendQueue::new(params(2, 1000, 100));
        // 20 requests = 2000 server-ms on 2 servers = 1000 ms of backlog.
        q.offer(SimTime::ZERO, 20, SimDuration::from_secs(60));
        let out = q.offer(SimTime::ZERO, 1, SimDuration::from_secs(60));
        assert_eq!(out.latency, SimDuration::from_millis(1000 + 100));
        // Half a second later the 2.1 s of admitted work (20 + 1 requests
        // on 2 servers) has drained to 550 ms of wait.
        q.advance_to(SimTime::from_millis(500));
        assert_eq!(q.latency_estimate(), SimDuration::from_millis(550 + 100));
    }

    #[test]
    fn full_queue_rejects_overflow() {
        let mut q = BackendQueue::new(params(1, 10, 100));
        let out = q.offer(SimTime::ZERO, 25, SimDuration::from_secs(60));
        assert_eq!(out.admitted, 10);
        assert_eq!(out.rejected, 15);
        let stats = q.stats();
        assert_eq!(stats.offered, 25);
        assert!(stats.conserved());
        // Space frees as work completes.
        q.advance_to(SimTime::from_millis(500));
        let out2 = q.offer(SimTime::from_millis(500), 25, SimDuration::from_secs(60));
        assert_eq!(out2.admitted, 5);
    }

    #[test]
    fn deadline_overrun_counts_as_timed_out() {
        let mut q = BackendQueue::new(params(1, 100, 100));
        q.offer(SimTime::ZERO, 30, SimDuration::from_secs(60)); // 3 s backlog
        let out = q.offer(SimTime::ZERO, 1, SimDuration::from_secs(2));
        assert!(out.timed_out, "3.1 s latency beats a 2 s deadline");
        let stats = q.drain_after(SimTime::from_secs(10));
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 30);
        assert!(stats.conserved());
    }

    #[test]
    fn advance_is_monotonic_and_idempotent() {
        let mut q = BackendQueue::new(params(2, 50, 50));
        q.offer(SimTime::from_secs(1), 5, SimDuration::from_secs(5));
        q.advance_to(SimTime::from_secs(2));
        let snap = q.stats();
        q.advance_to(SimTime::from_secs(1)); // earlier: ignored
        q.advance_to(SimTime::from_secs(2)); // same: no-op
        assert_eq!(q.stats(), snap);
    }
}
