//! The shared backend as a mean-field trace.
//!
//! Fleet devices simulate independently — possibly on different worker
//! threads, in any chunk order — yet the ISSUE's economy needs them all to
//! hammer *one* backend. Runtime-mutable cross-device state would make
//! reports depend on worker scheduling, so the backend is instead a
//! **trace**: a pure function of ([`OffloadProfile`], horizon) that drives
//! one [`BackendQueue`] with the aggregate arrival stream of the profile's
//! `load_devices`-strong population and records, per epoch, the latency
//! estimate, the admission verdict, and the batch's response latency.
//! Every device samples the same trace, so fleet reports stay
//! byte-identical for any worker count — and checkpoint/resume needs no
//! backend serialization, because a resumed run rebuilds the identical
//! trace from the scenario.
//!
//! The feedback loop lives in the arrival gate: each epoch's offered load
//! is the population's raw demand scaled by how far the queue's live
//! latency estimate sits below the client deadline (the same signal the
//! device-side [`break_even`](crate::policy::break_even) policy uses). A
//! saturated backend stretches its own estimate, the gate tapers demand
//! back toward local execution, and the queue breathes — exactly the
//! dynamics `fig_offload` sweeps.

use crate::queue::{BackendQueue, QueueParams, QueueStats};
use cinder_sim::{SimDuration, SimTime};

/// Scenario-level offload configuration: backend sizing, the population
/// load it serves, and the shape of one offloadable work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadProfile {
    /// Backend servers.
    pub capacity: u32,
    /// Maximum requests in flight before admission rejects.
    pub queue_limit: u32,
    /// Per-request service time on one server.
    pub service: SimDuration,
    /// Population size driving the shared backend (decoupled from the
    /// number of *simulated* devices: a 1,000-device fleet run can sample
    /// a backend serving a million-device population).
    pub load_devices: u64,
    /// Mean spacing between one device's work items.
    pub request_interval: SimDuration,
    /// Client deadline: responses later than this are abandoned and the
    /// item recomputed locally.
    pub deadline: SimDuration,
    /// Trace resolution; also the granularity at which devices observe
    /// backend state.
    pub epoch: SimDuration,
    /// Request payload shipped up per item.
    pub request_bytes: u64,
    /// Response payload shipped back per item.
    pub response_bytes: u64,
    /// Local CPU time one work item costs if computed on-device.
    pub work_per_item: SimDuration,
}

impl Default for OffloadProfile {
    fn default() -> Self {
        OffloadProfile {
            capacity: 8,
            queue_limit: 256,
            service: SimDuration::from_millis(50),
            load_devices: 2_000,
            request_interval: SimDuration::from_secs(300),
            deadline: SimDuration::from_secs(5),
            epoch: SimDuration::from_secs(1),
            request_bytes: 2_000,
            response_bytes: 500,
            // ~120 s of 137 mW CPU ≈ 16.4 J locally, well past the cold
            // radio's ~9.5 J activation — offloading pays when the backend
            // is responsive.
            work_per_item: SimDuration::from_secs(120),
        }
    }
}

impl OffloadProfile {
    /// Total bytes one offload round trip moves (tx + rx).
    pub fn round_trip_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }

    /// The queue sizing this profile describes.
    pub fn queue_params(&self) -> QueueParams {
        QueueParams {
            capacity: self.capacity,
            queue_limit: self.queue_limit,
            service: self.service,
        }
    }
}

/// One epoch's recorded backend state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSample {
    /// Latency estimate (queue wait + service) at the epoch's start —
    /// what a device's `offload_latency_estimate` syscall observes.
    pub latency_estimate: SimDuration,
    /// Fraction of raw population demand the latency gate let through,
    /// in ppm (1_000_000 = everyone offloads).
    pub gate_ppm: u32,
    /// Whether the backend admitted this epoch's batch in full; a device
    /// offloading this epoch is accepted iff true.
    pub accepted: bool,
    /// Backend time (wait + service) a request admitted this epoch waits
    /// for its response.
    pub response_latency: SimDuration,
    /// Whether that response lands past the client deadline.
    pub timed_out: bool,
}

/// The precomputed backend: per-epoch samples plus settled totals.
#[derive(Debug, Clone)]
pub struct BackendTrace {
    profile: OffloadProfile,
    epochs: Vec<EpochSample>,
    totals: QueueStats,
}

impl BackendTrace {
    /// Builds the trace for `horizon` of simulated time by replaying the
    /// gated mean-field arrival stream through a fresh queue. Pure:
    /// identical inputs give an identical trace.
    pub fn build(profile: OffloadProfile, horizon: SimDuration) -> Self {
        Self::build_with_outages(profile, horizon, &[])
    }

    /// Like [`BackendTrace::build`], but with deterministic outage
    /// windows (`[start, stop)` pairs, sorted and disjoint). Epochs whose
    /// start falls inside a window record a dead backend: the latency
    /// estimate pins to the client deadline (so device-side break-even
    /// goes local), the gate closes, nothing is offered, and any device
    /// that offloads anyway is rejected. The queue keeps draining its
    /// backlog through the window, so recovery dynamics are real.
    pub fn build_with_outages(
        profile: OffloadProfile,
        horizon: SimDuration,
        outages: &[(SimTime, SimTime)],
    ) -> Self {
        assert!(!profile.epoch.is_zero(), "epoch must be positive");
        assert!(
            !profile.request_interval.is_zero(),
            "request interval must be positive"
        );
        let mut queue = BackendQueue::new(profile.queue_params());
        let n_epochs = horizon.as_micros().div_ceil(profile.epoch.as_micros());
        let mut epochs = Vec::with_capacity(n_epochs as usize);
        // Fixed-point arrival accumulator: carries the sub-request residue
        // of `load_devices * epoch / interval` across epochs so the long-run
        // arrival rate is exact.
        let mut arrival_carry: u128 = 0;
        let deadline_us = profile.deadline.as_micros();
        let mut outage_idx = 0usize;
        for e in 0..n_epochs {
            let t = SimTime::ZERO + profile.epoch * e;
            queue.advance_to(t);
            while outage_idx < outages.len() && outages[outage_idx].1 <= t {
                outage_idx += 1;
            }
            let down = outages
                .get(outage_idx)
                .is_some_and(|&(start, stop)| start <= t && t < stop);
            if down {
                epochs.push(EpochSample {
                    latency_estimate: profile.deadline,
                    gate_ppm: 0,
                    accepted: false,
                    response_latency: profile.deadline,
                    timed_out: true,
                });
                continue;
            }
            let est = queue.latency_estimate();
            // Latency gate: demand tapers linearly to zero as the estimate
            // approaches the deadline (mirroring the device policy's
            // hard `estimate >= deadline -> local` clause at the limit).
            let gate_ppm = if est.as_micros() >= deadline_us {
                0u64
            } else {
                ((deadline_us - est.as_micros()) as u128 * 1_000_000 / deadline_us as u128) as u64
            };
            let raw =
                profile.load_devices as u128 * profile.epoch.as_micros() as u128 * gate_ppm as u128
                    + arrival_carry;
            let denom = profile.request_interval.as_micros() as u128 * 1_000_000;
            let offered = (raw / denom) as u64;
            arrival_carry = raw % denom;
            let out = queue.offer(t, offered, profile.deadline);
            epochs.push(EpochSample {
                latency_estimate: est,
                gate_ppm: gate_ppm as u32,
                accepted: out.rejected == 0,
                response_latency: out.latency,
                timed_out: out.timed_out,
            });
        }
        let totals = queue.drain_after(SimTime::ZERO + profile.epoch * n_epochs);
        BackendTrace {
            profile,
            epochs,
            totals,
        }
    }

    /// The profile this trace was built from.
    pub fn profile(&self) -> &OffloadProfile {
        &self.profile
    }

    /// Number of epochs recorded.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True for a zero-length horizon.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The epoch sample covering simulated time `t` (clamped to the last
    /// epoch past the horizon).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn sample(&self, t: SimTime) -> &EpochSample {
        assert!(!self.epochs.is_empty(), "empty backend trace");
        let idx = (t.as_micros() / self.profile.epoch.as_micros()) as usize;
        &self.epochs[idx.min(self.epochs.len() - 1)]
    }

    /// Settled conservation counters over the whole horizon (every
    /// admitted request driven to completion).
    pub fn totals(&self) -> QueueStats {
        self.totals
    }

    /// Fraction of raw population demand that offloaded, in ppm —
    /// request-weighted mean of the per-epoch gate (zeroed when the epoch's
    /// batch was rejected, since those requests fell back to local too).
    pub fn offload_fraction_ppm(&self) -> u64 {
        if self.epochs.is_empty() {
            return 0;
        }
        let mut num: u128 = 0;
        for s in &self.epochs {
            if s.accepted {
                num += s.gate_ppm as u128;
            }
        }
        (num / self.epochs.len() as u128) as u64
    }

    /// Request-weighted backend-latency percentile across the horizon
    /// (`q` in [0, 1]); [`SimDuration::ZERO`] when nothing was admitted.
    /// Uses the nearest-rank convention: the smallest latency whose
    /// cumulative admitted count reaches `ceil(q * total)`.
    pub fn latency_percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        // Rebuild (latency, weight) pairs from the per-epoch gate: epochs
        // with a rejected batch contributed no admitted requests.
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut total: u64 = 0;
        let mut carry: u128 = 0;
        let denom = self.profile.request_interval.as_micros() as u128 * 1_000_000;
        for s in &self.epochs {
            let raw = self.profile.load_devices as u128
                * self.profile.epoch.as_micros() as u128
                * s.gate_ppm as u128
                + carry;
            let offered = (raw / denom) as u64;
            carry = raw % denom;
            if s.accepted && offered > 0 {
                pairs.push((s.response_latency.as_micros(), offered));
                total += offered;
            }
        }
        if total == 0 {
            return SimDuration::ZERO;
        }
        pairs.sort_unstable();
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (lat, w) in pairs {
            cum += w;
            if cum >= target {
                return SimDuration::from_micros(lat);
            }
        }
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let p = OffloadProfile::default();
        let h = SimDuration::from_secs(600);
        let a = BackendTrace::build(p, h);
        let b = BackendTrace::build(p, h);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn roomy_backend_admits_everything() {
        let p = OffloadProfile {
            capacity: 64,
            queue_limit: 10_000,
            ..OffloadProfile::default()
        };
        let trace = BackendTrace::build(p, SimDuration::from_secs(3_600));
        let t = trace.totals();
        assert!(t.conserved());
        assert_eq!(t.rejected, 0);
        assert_eq!(t.timed_out, 0);
        assert!(t.offered > 0, "population generated load");
        // Unsaturated: the gate stays near wide open.
        assert!(trace.offload_fraction_ppm() > 900_000);
    }

    #[test]
    fn shrinking_capacity_raises_tail_latency_and_lowers_offload_fraction() {
        // The fig_offload feedback loop in miniature.
        let horizon = SimDuration::from_secs(3_600);
        let roomy = BackendTrace::build(
            OffloadProfile {
                capacity: 32,
                ..OffloadProfile::default()
            },
            horizon,
        );
        let starved = BackendTrace::build(
            OffloadProfile {
                capacity: 1,
                load_devices: 40_000,
                ..OffloadProfile::default()
            },
            horizon,
        );
        assert!(
            starved.latency_percentile(0.99) > roomy.latency_percentile(0.99),
            "less capacity, higher p99"
        );
        assert!(
            starved.offload_fraction_ppm() < roomy.offload_fraction_ppm(),
            "stretched latency shifts load back to devices"
        );
        // The gate keeps the starved backend live rather than collapsed:
        // some requests still complete.
        assert!(starved.totals().completed > 0);
    }

    #[test]
    fn sample_is_epoch_indexed_and_clamped() {
        let p = OffloadProfile::default();
        let trace = BackendTrace::build(p, SimDuration::from_secs(10));
        assert_eq!(trace.len(), 10);
        let early = trace.sample(SimTime::from_millis(500));
        assert_eq!(early.latency_estimate, p.service, "empty queue at t=0");
        // Past the horizon clamps to the last epoch rather than panicking.
        let _ = trace.sample(SimTime::from_secs(100));
    }

    #[test]
    fn outage_windows_close_the_gate_and_pin_the_estimate() {
        let p = OffloadProfile::default();
        let h = SimDuration::from_secs(60);
        let windows = [(SimTime::from_secs(10), SimTime::from_secs(20))];
        let trace = BackendTrace::build_with_outages(p, h, &windows);
        let down = trace.sample(SimTime::from_secs(15));
        assert!(!down.accepted);
        assert_eq!(down.gate_ppm, 0);
        assert_eq!(down.latency_estimate, p.deadline);
        let up = trace.sample(SimTime::from_secs(30));
        assert!(up.accepted, "backend recovers after the window");
        assert!(trace.totals().conserved());
        // No windows == plain build, byte for byte.
        let plain = BackendTrace::build(p, h);
        let empty = BackendTrace::build_with_outages(p, h, &[]);
        assert_eq!(plain.epochs, empty.epochs);
    }

    #[test]
    fn percentiles_are_monotone() {
        let trace = BackendTrace::build(
            OffloadProfile {
                capacity: 2,
                load_devices: 8_000,
                ..OffloadProfile::default()
            },
            SimDuration::from_secs(1_800),
        );
        let p50 = trace.latency_percentile(0.50);
        let p90 = trace.latency_percentile(0.90);
        let p99 = trace.latency_percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 >= trace.profile().service);
    }
}
