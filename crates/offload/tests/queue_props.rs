//! Property tests for the backend queue's conservation invariant.

use cinder_offload::{BackendQueue, QueueParams};
use cinder_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Admission conserves requests at every checkpoint: offered splits
    /// exactly into admitted + rejected, and admitted into completed +
    /// timed-out + in-flight — for random arrival patterns, capacities,
    /// and observation times.
    #[test]
    fn queue_conserves_requests(
        capacity in 1u32..32,
        queue_limit in 1u32..512,
        service_ms in 1u64..2_000,
        offers in proptest::collection::vec(
            (0u64..5_000, 1u64..50, 100u64..20_000), 1..60),
    ) {
        let mut q = BackendQueue::new(QueueParams {
            capacity,
            queue_limit,
            service: SimDuration::from_millis(service_ms),
        });
        let mut now = SimTime::ZERO;
        for (gap_ms, count, deadline_ms) in offers {
            now += SimDuration::from_millis(gap_ms);
            let out = q.offer(now, count, SimDuration::from_millis(deadline_ms));
            prop_assert_eq!(out.admitted + out.rejected, count);
            let stats = q.stats();
            prop_assert!(stats.conserved(), "after offer: {:?}", stats);
            prop_assert!(stats.in_flight() <= queue_limit as u64);
        }
        // Interleaved advances are checkpoints too.
        for step in [1u64, 7, 50, 1_000, 100_000] {
            now += SimDuration::from_millis(step);
            q.advance_to(now);
            prop_assert!(q.stats().conserved(), "after advance: {:?}", q.stats());
        }
        // Drained, nothing stays in flight and the split is total.
        let fin = q.drain_after(now);
        prop_assert!(fin.conserved());
        prop_assert_eq!(fin.in_flight(), 0);
        prop_assert_eq!(fin.offered, fin.admitted + fin.rejected);
        prop_assert_eq!(fin.admitted, fin.completed + fin.timed_out);
    }

    /// Two queues fed the same offers are bit-identical — the determinism
    /// the shared-backend trace (and so fleet worker-count byte-equality)
    /// rests on.
    #[test]
    fn identical_offers_give_identical_queues(
        capacity in 1u32..16,
        offers in proptest::collection::vec((0u64..2_000, 0u64..40), 1..40),
    ) {
        let params = QueueParams {
            capacity,
            queue_limit: 128,
            service: SimDuration::from_millis(80),
        };
        let run = |params: QueueParams| {
            let mut q = BackendQueue::new(params);
            let mut now = SimTime::ZERO;
            let mut outcomes = Vec::new();
            for &(gap_ms, count) in &offers {
                now += SimDuration::from_millis(gap_ms);
                outcomes.push(q.offer(now, count, SimDuration::from_secs(10)));
            }
            (outcomes, q.drain_after(now))
        };
        prop_assert_eq!(run(params), run(params));
    }
}
