//! Property tests: the label lattice laws HiStar's security argument rests
//! on. If any of these fail, reserve/tap access control is unsound.

use cinder_label::{Category, Label, Level, PrivilegeSet};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Star),
        Just(Level::L0),
        Just(Level::L1),
        Just(Level::L2),
        Just(Level::L3),
    ]
}

/// Labels over a small category universe so that comparisons are exercised
/// on overlapping and disjoint exception sets alike.
fn arb_label() -> impl Strategy<Value = Label> {
    (
        arb_level(),
        proptest::collection::btree_map(0u64..6, arb_level(), 0..4),
    )
        .prop_map(|(default, entries)| {
            let mut l = Label::uniform(default);
            for (id, lv) in entries {
                l.set(Category::new(id), lv);
            }
            l
        })
}

fn arb_privs() -> impl Strategy<Value = PrivilegeSet> {
    proptest::collection::btree_set(0u64..6, 0..4)
        .prop_map(|ids| ids.into_iter().map(Category::new).collect())
}

proptest! {
    #[test]
    fn leq_is_reflexive(l in arb_label()) {
        prop_assert!(l.leq(&l));
    }

    #[test]
    fn leq_is_antisymmetric(a in arb_label(), b in arb_label()) {
        if a.leq(&b) && b.leq(&a) {
            // Canonical representation makes equality structural.
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn leq_is_transitive(a in arb_label(), b in arb_label(), c in arb_label()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn join_is_least_upper_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
        let j = a.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(j.leq(&c), "join must be the *least* upper bound");
        }
    }

    #[test]
    fn meet_is_greatest_lower_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
        let m = a.meet(&b);
        prop_assert!(m.leq(&a));
        prop_assert!(m.leq(&b));
        if c.leq(&a) && c.leq(&b) {
            prop_assert!(c.leq(&m), "meet must be the *greatest* lower bound");
        }
    }

    #[test]
    fn join_meet_are_commutative(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
    }

    #[test]
    fn privileges_only_loosen(a in arb_label(), b in arb_label(), p in arb_privs()) {
        // Adding privileges can only permit more flows, never fewer.
        if a.leq(&b) {
            prop_assert!(a.leq_with_privileges(&b, &p));
        }
    }

    #[test]
    fn more_privileges_permit_more(
        a in arb_label(),
        b in arb_label(),
        p in arb_privs(),
        q in arb_privs(),
    ) {
        let union = p.union(&q);
        if a.leq_with_privileges(&b, &p) {
            prop_assert!(a.leq_with_privileges(&b, &union));
        }
    }

    #[test]
    fn can_use_implies_observe_and_modify(
        thread in arb_label(),
        object in arb_label(),
        p in arb_privs(),
    ) {
        if thread.can_use(&p, &object) {
            prop_assert!(thread.can_observe(&p, &object));
            prop_assert!(thread.can_modify(&p, &object));
        }
    }

    #[test]
    fn observe_is_monotone_in_object(
        thread in arb_label(),
        a in arb_label(),
        b in arb_label(),
    ) {
        // If b's information is less tainted than a's and a is observable,
        // then b is observable.
        let none = PrivilegeSet::empty();
        if thread.can_observe(&none, &a) && b.leq(&a) {
            prop_assert!(thread.can_observe(&none, &b));
        }
    }
}
