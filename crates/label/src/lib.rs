//! HiStar-style information-flow-control labels.
//!
//! Cinder is built on HiStar, whose six kernel object types are all
//! "protected by a security label" (paper §3.1). Reserves and taps inherit
//! that protection: *using* a reserve requires both observe and modify
//! privileges (failed consumption reveals the level; successful consumption
//! changes it — §3.5), and a tap carries embedded privileges sufficient to
//! move resources between its two endpoint reserves.
//!
//! The model implemented here is HiStar's label lattice:
//!
//! * A [`Category`] is an opaque 64-bit token. Whoever allocates a category
//!   owns it (holds `★` in it) and can grant that ownership to others.
//! * A [`Level`] is one of `★ < 0 < 1 < 2 < 3`. Higher levels mean more
//!   tainted (for secrecy categories) or less trusted (for integrity
//!   categories); `★` means ownership — the holder may ignore the category
//!   entirely.
//! * A [`Label`] maps categories to levels with a default for all unnamed
//!   categories. Labels form a lattice under the pointwise order; flows are
//!   permitted along `⊑` modulo the caller's [`PrivilegeSet`].
//!
//! The access checks used throughout the kernel are [`Label::can_observe`],
//! [`Label::can_modify`], and their conjunction [`Label::can_use`].
//!
//! # Examples
//!
//! ```
//! use cinder_label::{Category, Label, Level, PrivilegeSet};
//!
//! // A browser creates a category to protect its energy reserve.
//! let c = Category::new(1);
//! let reserve_label = Label::with(&[(c, Level::L3)]);
//!
//! // A plugin without privileges can neither observe nor modify it…
//! let plugin = Label::default_label();
//! assert!(!plugin.can_use(&PrivilegeSet::empty(), &reserve_label));
//!
//! // …but the browser, owning `c`, can.
//! let browser_privs = PrivilegeSet::with(&[c]);
//! assert!(plugin.can_use(&browser_privs, &reserve_label));
//! ```

pub mod category;
pub mod label;
pub mod level;
pub mod privileges;

pub use category::{Category, CategorySpace};
pub use label::Label;
pub use level::Level;
pub use privileges::PrivilegeSet;
