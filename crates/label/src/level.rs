//! Taint levels and their total order.

use std::fmt;

/// A taint level in a label: `★ < 0 < 1 < 2 < 3`.
///
/// `★` (ownership) sorts below every numeric level: an owner may both
/// receive information from and send information to any level of that
/// category, which the pointwise `⊑` check realises by placing `★` at the
/// bottom for sources and treating owned categories as unconstrained for
/// the holder (see [`crate::Label::leq_with_privileges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Ownership of the category.
    Star,
    /// Level 0 (lowest taint; integrity-protected writers live here).
    L0,
    /// Level 1: HiStar's default for ordinary data.
    L1,
    /// Level 2.
    L2,
    /// Level 3 (highest taint; secrets live here).
    L3,
}

impl Level {
    /// The default level of unnamed categories in ordinary labels.
    pub const DEFAULT: Level = Level::L1;

    /// All levels in ascending order.
    pub const ALL: [Level; 5] = [Level::Star, Level::L0, Level::L1, Level::L2, Level::L3];

    /// The larger of two levels.
    pub fn join(self, other: Level) -> Level {
        self.max(other)
    }

    /// The smaller of two levels.
    pub fn meet(self, other: Level) -> Level {
        self.min(other)
    }

    /// True for `★`.
    pub const fn is_star(self) -> bool {
        matches!(self, Level::Star)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Star => write!(f, "★"),
            Level::L0 => write!(f, "0"),
            Level::L1 => write!(f, "1"),
            Level::L2 => write!(f, "2"),
            Level::L3 => write!(f, "3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        for w in Level::ALL.windows(2) {
            assert!(w[0] < w[1], "{} should be < {}", w[0], w[1]);
        }
        assert!(Level::Star < Level::L0);
        assert!(Level::L0 < Level::L3);
    }

    #[test]
    fn join_meet() {
        assert_eq!(Level::L1.join(Level::L3), Level::L3);
        assert_eq!(Level::L1.meet(Level::L3), Level::L1);
        assert_eq!(Level::Star.join(Level::L0), Level::L0);
        assert_eq!(Level::Star.meet(Level::L0), Level::Star);
    }

    #[test]
    fn default_is_one() {
        assert_eq!(Level::DEFAULT, Level::L1);
    }
}
