//! Labels and the flow-control lattice.

use std::collections::BTreeMap;
use std::fmt;

use crate::category::Category;
use crate::level::Level;
use crate::privileges::PrivilegeSet;

/// A security label: a total map from categories to levels, represented as a
/// default level plus explicit exceptions.
///
/// Stored in canonical form: the exception map never contains an entry equal
/// to the default level, so structural equality coincides with semantic
/// equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Label {
    default: Level,
    exceptions: BTreeMap<Category, Level>,
}

impl Label {
    /// The ordinary data label `{1}`: every category at the default level 1.
    pub fn default_label() -> Self {
        Label {
            default: Level::DEFAULT,
            exceptions: BTreeMap::new(),
        }
    }

    /// A label with the given default level and no exceptions.
    pub fn uniform(default: Level) -> Self {
        Label {
            default,
            exceptions: BTreeMap::new(),
        }
    }

    /// A label with default level 1 and the given category exceptions.
    pub fn with(pairs: &[(Category, Level)]) -> Self {
        let mut l = Label::default_label();
        for &(c, lv) in pairs {
            l.set(c, lv);
        }
        l
    }

    /// The default level of unnamed categories.
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// The level of `category` under this label.
    pub fn level(&self, category: Category) -> Level {
        self.exceptions
            .get(&category)
            .copied()
            .unwrap_or(self.default)
    }

    /// Sets the level of `category`, keeping canonical form.
    pub fn set(&mut self, category: Category, level: Level) {
        if level == self.default {
            self.exceptions.remove(&category);
        } else {
            self.exceptions.insert(category, level);
        }
    }

    /// Returns a copy with `category` set to `level`.
    pub fn with_level(&self, category: Category, level: Level) -> Label {
        let mut l = self.clone();
        l.set(category, level);
        l
    }

    /// The categories with non-default levels, in ascending order.
    pub fn exceptions(&self) -> impl Iterator<Item = (Category, Level)> + '_ {
        self.exceptions.iter().map(|(&c, &l)| (c, l))
    }

    /// The pointwise partial order `self ⊑ other`: information labelled
    /// `self` may flow to a sink labelled `other`.
    pub fn leq(&self, other: &Label) -> bool {
        self.leq_with_privileges(other, &PrivilegeSet::empty())
    }

    /// `⊑` modulo privileges: categories owned by `privs` are exempt from
    /// the comparison (an owner may move information across its categories
    /// freely).
    pub fn leq_with_privileges(&self, other: &Label, privs: &PrivilegeSet) -> bool {
        if self.default > other.default {
            // Infinitely many unnamed categories violate the order; owned
            // categories are finite and cannot save it.
            return false;
        }
        self.exceptions
            .keys()
            .chain(other.exceptions.keys())
            .all(|&c| privs.owns(c) || self.level(c) <= other.level(c))
    }

    /// Least upper bound: the most permissive label both operands flow to.
    pub fn join(&self, other: &Label) -> Label {
        self.combine(other, Level::join)
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Label) -> Label {
        self.combine(other, Level::meet)
    }

    fn combine(&self, other: &Label, f: impl Fn(Level, Level) -> Level) -> Label {
        let mut out = Label::uniform(f(self.default, other.default));
        for &c in self.exceptions.keys().chain(other.exceptions.keys()) {
            out.set(c, f(self.level(c), other.level(c)));
        }
        out
    }

    /// Whether a thread labelled `self` holding `privs` may *observe* an
    /// object labelled `object`: the object's information must be able to
    /// flow to the thread (`object ⊑ self`).
    pub fn can_observe(&self, privs: &PrivilegeSet, object: &Label) -> bool {
        object.leq_with_privileges(self, privs)
    }

    /// Whether a thread labelled `self` holding `privs` may *modify* an
    /// object labelled `object`: the thread's information must be able to
    /// flow to the object (`self ⊑ object`).
    pub fn can_modify(&self, privs: &PrivilegeSet, object: &Label) -> bool {
        self.leq_with_privileges(object, privs)
    }

    /// Whether a thread may *use* a reserve labelled `object`.
    ///
    /// Paper §3.5: "Using resources from a reserve requires both observe and
    /// modify privileges: observe because failed consumption indicates the
    /// reserve level (zero) and modify for when consumption succeeds."
    pub fn can_use(&self, privs: &PrivilegeSet, object: &Label) -> bool {
        self.can_observe(privs, object) && self.can_modify(privs, object)
    }
}

impl Default for Label {
    fn default() -> Self {
        Label::default_label()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (c, l) in &self.exceptions {
            write!(f, "{c}{l}, ")?;
        }
        write!(f, "{}}}", self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Category {
        Category::new(id)
    }

    #[test]
    fn canonical_form_drops_default_entries() {
        let mut l = Label::default_label();
        l.set(c(1), Level::L3);
        l.set(c(1), Level::L1); // back to default
        assert_eq!(l, Label::default_label());
        assert_eq!(l.exceptions().count(), 0);
    }

    #[test]
    fn level_lookup_uses_default() {
        let l = Label::with(&[(c(1), Level::L3)]);
        assert_eq!(l.level(c(1)), Level::L3);
        assert_eq!(l.level(c(2)), Level::L1);
    }

    #[test]
    fn leq_pointwise() {
        let lo = Label::with(&[(c(1), Level::L0)]);
        let hi = Label::with(&[(c(1), Level::L3)]);
        assert!(lo.leq(&hi));
        assert!(!hi.leq(&lo));
        assert!(lo.leq(&lo));
    }

    #[test]
    fn leq_with_different_defaults() {
        let secret_everything = Label::uniform(Level::L3);
        let ordinary = Label::default_label();
        assert!(ordinary.leq(&secret_everything));
        assert!(!secret_everything.leq(&ordinary));
        // Privileges cannot fix a default-level violation (infinitely many
        // categories are affected).
        let p = PrivilegeSet::with(&[c(1)]);
        assert!(!secret_everything.leq_with_privileges(&ordinary, &p));
    }

    #[test]
    fn privileges_exempt_owned_categories() {
        let tainted = Label::with(&[(c(1), Level::L3)]);
        let clean = Label::default_label();
        assert!(!tainted.leq(&clean));
        assert!(tainted.leq_with_privileges(&clean, &PrivilegeSet::with(&[c(1)])));
        // Owning an unrelated category does not help.
        assert!(!tainted.leq_with_privileges(&clean, &PrivilegeSet::with(&[c(2)])));
    }

    #[test]
    fn join_meet_bounds() {
        let a = Label::with(&[(c(1), Level::L3), (c(2), Level::L0)]);
        let b = Label::with(&[(c(1), Level::L0), (c(3), Level::L2)]);
        let j = a.join(&b);
        let m = a.meet(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert!(m.leq(&a) && m.leq(&b));
        assert_eq!(j.level(c(1)), Level::L3);
        assert_eq!(m.level(c(1)), Level::L0);
        assert_eq!(j.level(c(2)), Level::L1);
        assert_eq!(m.level(c(2)), Level::L0);
    }

    #[test]
    fn reserve_use_requires_both_directions() {
        // A reserve at {c1:3}: threads at default label can flow *to* it but
        // not observe it, so `can_use` fails without privileges.
        let reserve = Label::with(&[(c(1), Level::L3)]);
        let thread = Label::default_label();
        let none = PrivilegeSet::empty();
        assert!(thread.can_modify(&none, &reserve));
        assert!(!thread.can_observe(&none, &reserve));
        assert!(!thread.can_use(&none, &reserve));
        let owner = PrivilegeSet::with(&[c(1)]);
        assert!(thread.can_use(&owner, &reserve));
    }

    #[test]
    fn integrity_category_blocks_modification() {
        // A reserve at {c1:0}: everyone may observe, only owners may modify.
        let reserve = Label::with(&[(c(1), Level::L0)]);
        let thread = Label::default_label();
        let none = PrivilegeSet::empty();
        assert!(thread.can_observe(&none, &reserve));
        assert!(!thread.can_modify(&none, &reserve));
        assert!(thread.can_modify(&PrivilegeSet::with(&[c(1)]), &reserve));
    }

    #[test]
    fn display() {
        let l = Label::with(&[(c(1), Level::L3)]);
        assert_eq!(l.to_string(), "{c13, 1}");
    }
}
