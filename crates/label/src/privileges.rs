//! Privilege sets: the categories a thread (or tap) owns.

use std::collections::BTreeSet;
use std::fmt;

use crate::category::Category;

/// A set of owned categories (`★` holdings).
///
/// Threads carry a privilege set; taps have privileges *embedded* in them at
/// creation time (paper §3.5) so the periodic batch flow can move energy
/// between reserves the tap's creator was entitled to touch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrivilegeSet {
    owned: BTreeSet<Category>,
}

impl PrivilegeSet {
    /// The empty privilege set.
    pub fn empty() -> Self {
        PrivilegeSet::default()
    }

    /// A set owning exactly the given categories.
    pub fn with(categories: &[Category]) -> Self {
        PrivilegeSet {
            owned: categories.iter().copied().collect(),
        }
    }

    /// True if `category` is owned.
    pub fn owns(&self, category: Category) -> bool {
        self.owned.contains(&category)
    }

    /// Grants ownership of `category`.
    pub fn grant(&mut self, category: Category) {
        self.owned.insert(category);
    }

    /// Revokes ownership of `category`; returns whether it was held.
    pub fn drop_privilege(&mut self, category: Category) -> bool {
        self.owned.remove(&category)
    }

    /// The union of two privilege sets (e.g. thread privileges plus a tap's
    /// embedded privileges).
    pub fn union(&self, other: &PrivilegeSet) -> PrivilegeSet {
        PrivilegeSet {
            owned: self.owned.union(&other.owned).copied().collect(),
        }
    }

    /// True if every category owned by `other` is also owned by `self`.
    pub fn covers(&self, other: &PrivilegeSet) -> bool {
        other.owned.is_subset(&self.owned)
    }

    /// Iterates over owned categories in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = Category> + '_ {
        self.owned.iter().copied()
    }

    /// Number of owned categories.
    pub fn len(&self) -> usize {
        self.owned.len()
    }

    /// True if nothing is owned.
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }
}

impl fmt::Display for PrivilegeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.owned.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}★")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Category> for PrivilegeSet {
    fn from_iter<I: IntoIterator<Item = Category>>(iter: I) -> Self {
        PrivilegeSet {
            owned: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_drop() {
        let c = Category::new(1);
        let mut p = PrivilegeSet::empty();
        assert!(!p.owns(c));
        p.grant(c);
        assert!(p.owns(c));
        assert!(p.drop_privilege(c));
        assert!(!p.owns(c));
        assert!(!p.drop_privilege(c));
    }

    #[test]
    fn union_and_covers() {
        let a = Category::new(1);
        let b = Category::new(2);
        let pa = PrivilegeSet::with(&[a]);
        let pb = PrivilegeSet::with(&[b]);
        let both = pa.union(&pb);
        assert!(both.owns(a) && both.owns(b));
        assert!(both.covers(&pa));
        assert!(both.covers(&pb));
        assert!(!pa.covers(&both));
        assert!(pa.covers(&PrivilegeSet::empty()));
    }

    #[test]
    fn display() {
        let p = PrivilegeSet::with(&[Category::new(2), Category::new(1)]);
        assert_eq!(p.to_string(), "{c1★, c2★}");
    }
}
