//! Categories: the opaque tokens labels are built from.

use std::fmt;

/// An information-flow category.
///
/// In HiStar a category is an unforgeable 61-bit value allocated by the
/// kernel; allocating one grants the allocator ownership (`★`). Here it is a
/// newtype over `u64`, allocated through [`CategorySpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Category(u64);

impl Category {
    /// Creates a category with an explicit id (useful in tests; real code
    /// should allocate through [`CategorySpace`]).
    pub const fn new(id: u64) -> Self {
        Category(id)
    }

    /// The raw id.
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A monotonically increasing category allocator.
///
/// The kernel holds one of these; `category_alloc` system calls draw from it.
/// Ids are never reused, mirroring HiStar's unforgeability guarantee.
#[derive(Debug, Default)]
pub struct CategorySpace {
    next: u64,
}

impl CategorySpace {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        CategorySpace::default()
    }

    /// Allocates a fresh, never-before-seen category.
    pub fn alloc(&mut self) -> Category {
        let c = Category(self.next);
        self.next += 1;
        c
    }

    /// Number of categories allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotonic_and_unique() {
        let mut space = CategorySpace::new();
        let a = space.alloc();
        let b = space.alloc();
        let c = space.alloc();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a.id() < b.id() && b.id() < c.id());
        assert_eq!(space.allocated(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Category::new(7).to_string(), "c7");
    }
}
