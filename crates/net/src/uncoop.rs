//! The uncooperative baseline stack.
//!
//! §6.4 compares netd "to an energy-unrestricted network stack": every
//! send goes out immediately, there is no pooling, no blocking, and no
//! radio-cost billing (CPU costs are still charged by the scheduler as
//! usual). This is the Fig 13a configuration whose staggered radio
//! episodes waste energy.

use cinder_kernel::{NetEnv, NetStack, SendRequest, SendVerdict, ThreadId};

/// A stack that transmits unconditionally and bills nothing.
#[derive(Debug, Default)]
pub struct UncoopStack {
    sends: u64,
}

impl UncoopStack {
    /// Creates the baseline stack.
    pub fn new() -> Self {
        UncoopStack::default()
    }

    /// How many sends have passed through (experiment bookkeeping).
    pub fn sends(&self) -> u64 {
        self.sends
    }
}

impl NetStack for UncoopStack {
    fn request(&mut self, env: &mut NetEnv<'_>, req: SendRequest) -> SendVerdict {
        self.sends += 1;
        // Unrestricted: straight to the radio, replies unbilled.
        env.transmit(&req, None);
        SendVerdict::Sent
    }

    fn poll(&mut self, _env: &mut NetEnv<'_>) -> Vec<ThreadId> {
        Vec::new()
    }

    fn is_idle(&self) -> bool {
        // Never queues, never blocks: polling is a no-op, so the kernel's
        // idle fast-forward may skip it freely.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, ResourceGraph};
    use cinder_hw::{Arm9, Battery, RadioParams};
    use cinder_label::Label;
    use cinder_sim::{Energy, SimDuration, SimRng, SimTime};

    #[test]
    fn always_sends_never_bills() {
        let mut graph = ResourceGraph::new(Energy::from_joules(100));
        let k = Actor::kernel();
        let reserve = graph
            .create_reserve(&k, "poller", Label::default_label())
            .unwrap();
        // Note: reserve is EMPTY — the unrestricted stack sends anyway.
        let mut arm9 = Arm9::new(RadioParams::htc_dream(), Battery::fig1_15kj());
        let mut rng = SimRng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut metered = Energy::ZERO;
        let mut stack = UncoopStack::new();
        let verdict = stack.request(
            &mut NetEnv {
                now: SimTime::from_secs(1),
                graph: &mut graph,
                arm9: &mut arm9,
                rng: &mut rng,
                rx_outbox: &mut outbox,
                metered_energy: &mut metered,
            },
            SendRequest {
                thread: ThreadId::test_id(1),
                reserve,
                byte_reserve: None,
                tx_bytes: 512,
                rx_bytes: 1024,
                extra_delay: SimDuration::ZERO,
                wakes: false,
            },
        );
        assert_eq!(verdict, SendVerdict::Sent);
        assert_eq!(stack.sends(), 1);
        assert!(arm9.radio().is_active());
        // Reply scheduled, but unbilled.
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].bill, None);
        // The reserve was never touched.
        assert_eq!(graph.reserve(reserve).unwrap().balance(), Energy::ZERO);
        assert_eq!(
            graph.reserve(reserve).unwrap().stats().consumed,
            Energy::ZERO
        );
    }
}
