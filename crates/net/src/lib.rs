//! Cinder's network stacks.
//!
//! Paper §5.5: "Cinder's network stack, netd, improves energy efficiency
//! for this typical class of applications through using two mechanisms:
//! precise resource accounting across process boundaries and flexible
//! sharing and resource transfer control."
//!
//! Two [`cinder_kernel::NetStack`] implementations:
//!
//! * [`netd::CoopNetd`] — the cooperative stack of Fig 8: a pooled,
//!   decay-exempt reserve into which blocked senders contribute the energy
//!   their taps accumulate; the radio powers up only once the pool holds
//!   125% of the estimated activation cost, and all waiting requests
//!   proceed together.
//! * [`uncoop::UncoopStack`] — the baseline "energy-unrestricted network
//!   stack" of §6.4: every request transmits immediately; nobody
//!   coordinates; the radio is dragged up staggered and stays active far
//!   longer (Fig 13a).

pub mod netd;
pub mod uncoop;

pub use netd::{CoopNetd, NetdConfig};
pub use uncoop::UncoopStack;
