//! The cooperative network stack, `netd`.
//!
//! Paper §5.5.2: "netd contains a reserve where threads cooperatively save
//! up energy for a radio power up event. For each thread that makes a
//! network system call, if the sum of its own reserve and netd's reserve
//! are not sufficient for the power on, the call blocks, contributes the
//! energy acquired by its taps to the netd reserve, and sleeps to
//! accumulate more. When there is sufficient energy to turn the radio on
//! and perform the transmissions requested by the waiting threads, Cinder
//! debits the reserve and permits the threads to proceed."
//!
//! Fig 14's caption adds the threshold: "netd requires 125% of this level
//! before turning the radio on, essentially mandating that applications
//! have extra energy to transmit and receive subsequent packets. Therefore,
//! the reserve does not empty to 0."
//!
//! The pool is decay-exempt: "The netd reserve is not subject to the system
//! global half-life, as the process is trusted not to hoard energy."

use cinder_core::{Actor, ReserveId, ResourceGraph};
use cinder_kernel::{NetEnv, NetStack, SendRequest, SendVerdict, ThreadId};
use cinder_label::Label;
use cinder_sim::Energy;

/// netd configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetdConfig {
    /// Required pool level as a fraction of the estimated cost, in ppm
    /// (Fig 14: 1_250_000 = 125%).
    pub threshold_ppm: u64,
}

impl Default for NetdConfig {
    fn default() -> Self {
        NetdConfig {
            threshold_ppm: 1_250_000,
        }
    }
}

/// A queued, blocked send request.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    req: SendRequest,
}

/// A memoised failed grant check (see `CoopNetd::pending_check`).
#[derive(Debug, Clone, Copy)]
struct PendingCheck {
    /// `threshold - pool` at the last full check.
    shortfall: Energy,
    /// Pool level after that check plus every contribution since.
    expected_pool: Energy,
    /// Radio signature the threshold monotonicity argument relies on.
    radio_active: bool,
    radio_next_transition: Option<cinder_sim::SimTime>,
}

/// The cooperative stack.
pub struct CoopNetd {
    config: NetdConfig,
    pool: ReserveId,
    waiting: Vec<Waiting>,
    /// Threads whose queued requests were granted as part of a *newcomer's*
    /// batch; reported (and woken) at the next `poll`.
    granted_backlog: Vec<ThreadId>,
    /// Reused request-batch buffer: `poll` runs every flow tick for the
    /// whole pooling window, so its per-call allocations are hot-loop cost.
    batch_scratch: Vec<SendRequest>,
    /// Outcome of the last failed grant check, letting the next polls skip
    /// re-estimating the radio cost entirely — *exactly*, not
    /// heuristically: while the radio signature is unchanged the threshold
    /// is non-decreasing, and the pool only moves by the contributions this
    /// stack sweeps (verified against `expected_pool` each poll), so
    /// `contributed < shortfall` proves the full check would fail too. Any
    /// mismatch (new activity, external pool change, waiting-set change)
    /// falls back to the full check.
    pending_check: Option<PendingCheck>,
    /// Total energy ever debited from the pool for radio work.
    spent: Energy,
    /// Number of radio power-ups netd paid for.
    grants: u64,
}

impl CoopNetd {
    /// Creates netd, allocating its pooled reserve in `graph` (decay-exempt,
    /// as the paper trusts netd not to hoard).
    pub fn new(graph: &mut ResourceGraph, config: NetdConfig) -> Self {
        let kernel = Actor::kernel();
        let pool = graph
            .create_reserve(&kernel, "netd-pool", Label::default_label())
            .expect("kernel actor can always create reserves");
        graph
            .set_decay_exempt(&kernel, pool, true)
            .expect("pool exists");
        CoopNetd {
            config,
            pool,
            waiting: Vec::new(),
            granted_backlog: Vec::new(),
            batch_scratch: Vec::new(),
            pending_check: None,
            spent: Energy::ZERO,
            grants: 0,
        }
    }

    /// With the paper's 125% threshold.
    pub fn with_defaults(graph: &mut ResourceGraph) -> Self {
        CoopNetd::new(graph, NetdConfig::default())
    }

    /// Total energy netd has debited for radio work.
    pub fn spent(&self) -> Energy {
        self.spent
    }

    /// Number of granted radio uses.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of requests currently blocked.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Sweeps a requester's accumulated tap energy into the pool
    /// ("contributes the energy acquired by its taps to the netd reserve"),
    /// returning the amount moved. Runs every flow tick for the whole
    /// pooling window, so it uses the graph's single-pass kernel sweep
    /// instead of a level + transfer pair.
    fn contribute(&self, env: &mut NetEnv<'_>, reserve: ReserveId) -> Energy {
        env.graph.sweep_kernel(reserve, self.pool)
    }

    /// The estimated cost of serving `requests` right now: one radio
    /// power-up (or extension) plus everyone's data.
    fn estimate(&self, env: &NetEnv<'_>, requests: &[SendRequest]) -> Energy {
        let radio = env.arm9.radio();
        let data_bytes: u64 = requests.iter().map(|r| r.tx_bytes + r.rx_bytes).sum();
        radio.cost_estimate(env.now, data_bytes)
    }

    fn threshold(&self, cost: Energy) -> Energy {
        cost.scale_ppm(self.config.threshold_ppm)
    }

    /// Grants a batch: debits the pool for `cost` and transmits every
    /// request. Callers must have verified the pool covers `cost`.
    fn grant(&mut self, env: &mut NetEnv<'_>, requests: &[SendRequest], cost: Energy) {
        let kernel = Actor::kernel();
        env.graph
            .consume(&kernel, self.pool, cost)
            .expect("grant checked pool level");
        self.spent += cost;
        self.grants += 1;
        for req in requests {
            // Receive costs are billed to the requester after the fact
            // (§5.5.2: debit "up to or into debt").
            env.transmit(req, Some(req.reserve));
        }
    }

    fn pool_level(&self, env: &NetEnv<'_>) -> Energy {
        env.graph
            .reserve(self.pool)
            .map(|r| r.balance())
            .unwrap_or(Energy::ZERO)
    }
}

impl NetStack for CoopNetd {
    fn request(&mut self, env: &mut NetEnv<'_>, req: SendRequest) -> SendVerdict {
        // The waiting set (and so the estimated batch cost) changes.
        self.pending_check = None;
        let kernel = Actor::kernel();
        // A newcomer is batched with everyone already waiting: "When there
        // is sufficient energy to turn the radio on and perform the
        // transmissions requested by the waiting threads, Cinder debits the
        // reserve and permits the threads to proceed."
        let mut batch: Vec<SendRequest> = self.waiting.iter().map(|w| w.req).collect();
        batch.push(req);
        let cost = self.estimate(env, &batch);
        let need = self.threshold(cost);
        let pool = self.pool_level(env);
        let own = env
            .graph
            .level(&kernel, req.reserve)
            .unwrap_or(Energy::ZERO)
            .clamp_non_negative();
        // §5.5.2: grant "if the sum of its own reserve and netd's reserve"
        // suffices; otherwise block and contribute.
        if pool + own >= need {
            // The pool must reach the full 125% threshold before power-on
            // (Fig 14) — the surplus is what keeps it from emptying to 0.
            let shortfall = (need - pool).clamp_non_negative();
            if shortfall.is_positive() {
                env.graph
                    .transfer(&kernel, req.reserve, self.pool, shortfall)
                    .expect("sum covered the threshold, so own >= shortfall");
            }
            self.grant(env, &batch, cost);
            // Waiters granted alongside the newcomer wake at the next poll.
            self.granted_backlog
                .extend(self.waiting.drain(..).map(|w| w.req.thread));
            SendVerdict::Sent
        } else {
            self.contribute(env, req.reserve);
            self.waiting.push(Waiting { req });
            SendVerdict::Blocked
        }
    }

    fn poll(&mut self, env: &mut NetEnv<'_>) -> Vec<ThreadId> {
        let mut woken = std::mem::take(&mut self.granted_backlog);
        if self.waiting.is_empty() {
            return woken;
        }
        // Blocked threads keep contributing what their taps deliver
        // (indexed copies: `SendRequest` is `Copy`, no temporary vector).
        let mut contributed = Energy::ZERO;
        for i in 0..self.waiting.len() {
            let reserve = self.waiting[i].req.reserve;
            contributed += self.contribute(env, reserve);
        }
        let radio = env.arm9.radio();
        let radio_active = radio.is_active();
        let radio_next_transition = radio.next_transition();
        let pool = self.pool_level(env);
        if let Some(chk) = self.pending_check {
            if chk.radio_active == radio_active
                && chk.radio_next_transition == radio_next_transition
                && pool == chk.expected_pool + contributed
                && contributed < chk.shortfall
            {
                // pool < previous threshold ≤ current threshold: the full
                // check would refuse too. Carry the shortfall forward.
                self.pending_check = Some(PendingCheck {
                    shortfall: chk.shortfall - contributed,
                    expected_pool: pool,
                    radio_active,
                    radio_next_transition,
                });
                return woken;
            }
        }
        let mut requests = std::mem::take(&mut self.batch_scratch);
        requests.clear();
        requests.extend(self.waiting.iter().map(|w| w.req));
        let cost = self.estimate(env, &requests);
        let threshold = self.threshold(cost);
        if pool >= threshold {
            self.pending_check = None;
            self.grant(env, &requests, cost);
            self.waiting.clear();
            woken.extend(requests.iter().map(|r| r.thread));
        } else {
            self.pending_check = Some(PendingCheck {
                shortfall: threshold - pool,
                expected_pool: pool,
                radio_active,
                radio_next_transition,
            });
        }
        self.batch_scratch = requests;
        woken
    }

    fn pool_reserve(&self) -> Option<ReserveId> {
        Some(self.pool)
    }

    fn is_idle(&self) -> bool {
        // Waiting senders accumulate pool energy at every poll, and granted
        // backlog threads are woken by the next poll; the kernel must not
        // fast-forward past either.
        self.waiting.is_empty() && self.granted_backlog.is_empty()
    }

    fn poll_inert_while_frozen(
        &self,
        graph: &ResourceGraph,
        radio_active: bool,
        radio_next_transition: Option<cinder_sim::SimTime>,
    ) -> bool {
        // A frozen-graph poll replays exactly when (a) there is no granted
        // backlog to wake, (b) every waiter's reserve holds nothing, so the
        // per-tick sweep contributes zero, and (c) the memoised failed
        // check matches the live pool and radio signature — then `poll`
        // rewrites `pending_check` with its own values (contributed = 0 <
        // shortfall, which a full check stores as positive) and returns no
        // wakes: a bitwise no-op, for as many ticks as the freeze lasts.
        // Without a memoised check the full estimate could *grant* from an
        // already-sufficient pool, so it is never skippable.
        if !self.granted_backlog.is_empty() {
            return false;
        }
        if self.waiting.is_empty() {
            return true;
        }
        let Some(chk) = self.pending_check else {
            return false;
        };
        if chk.radio_active != radio_active
            || chk.radio_next_transition != radio_next_transition
            || !chk.shortfall.is_positive()
        {
            return false;
        }
        let pool = graph
            .reserve(self.pool)
            .map(|r| r.balance())
            .unwrap_or(Energy::ZERO);
        if pool != chk.expected_pool {
            return false;
        }
        self.waiting.iter().all(|w| {
            graph
                .reserve(w.req.reserve)
                .is_none_or(|r| !r.balance().is_positive())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{GraphConfig, RateSpec};
    use cinder_hw::{Arm9, Battery, RadioParams};
    use cinder_sim::{Power, SimDuration, SimRng, SimTime};

    struct Rig {
        graph: ResourceGraph,
        arm9: Arm9,
        rng: SimRng,
        outbox: Vec<cinder_kernel::netstack::RxDelivery>,
        metered: Energy,
        now: SimTime,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                graph: ResourceGraph::with_config(
                    Energy::from_joules(15_000),
                    GraphConfig {
                        decay: None,
                        ..GraphConfig::default()
                    },
                ),
                arm9: Arm9::new(RadioParams::htc_dream(), Battery::fig1_15kj()),
                rng: SimRng::seed_from_u64(5),
                outbox: Vec::new(),
                metered: Energy::ZERO,
                now: SimTime::ZERO,
            }
        }

        fn env(&mut self) -> NetEnv<'_> {
            NetEnv {
                now: self.now,
                graph: &mut self.graph,
                arm9: &mut self.arm9,
                rng: &mut self.rng,
                rx_outbox: &mut self.outbox,
                metered_energy: &mut self.metered,
            }
        }

        fn reserve_with(&mut self, name: &str, joules: i64) -> ReserveId {
            let k = Actor::kernel();
            let battery = self.graph.battery();
            let r = self
                .graph
                .create_reserve(&k, name, Label::default_label())
                .unwrap();
            if joules > 0 {
                self.graph
                    .transfer(&k, battery, r, Energy::from_joules(joules))
                    .unwrap();
            }
            r
        }

        fn advance(&mut self, by: SimDuration) {
            self.now += by;
            self.arm9.advance_to(self.now);
            self.graph.flow_until(self.now);
        }
    }

    fn req(thread: u64, reserve: ReserveId, bytes: u64) -> SendRequest {
        SendRequest {
            thread: ThreadId::test_id(thread),
            reserve,
            byte_reserve: None,
            tx_bytes: bytes,
            rx_bytes: 0,
            extra_delay: SimDuration::ZERO,
            wakes: false,
        }
    }

    #[test]
    fn poor_requester_blocks_and_contributes() {
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let r = rig.reserve_with("poller", 2); // 2 J << 11.875 J needed
        let verdict = netd.request(&mut rig.env(), req(1, r, 100));
        assert_eq!(verdict, SendVerdict::Blocked);
        assert_eq!(netd.waiting(), 1);
        // The requester's 2 J moved into the pool.
        let k = Actor::kernel();
        assert_eq!(rig.graph.level(&k, r).unwrap(), Energy::ZERO);
        let pool = netd.pool_reserve().unwrap();
        assert_eq!(rig.graph.level(&k, pool).unwrap(), Energy::from_joules(2));
        // Radio untouched.
        assert!(!rig.arm9.radio().is_active());
    }

    #[test]
    fn rich_requester_sends_immediately() {
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let r = rig.reserve_with("rich", 20); // covers 125% of 9.5 J
        let verdict = netd.request(&mut rig.env(), req(1, r, 100));
        assert_eq!(verdict, SendVerdict::Sent);
        assert!(rig.arm9.radio().is_active());
        assert_eq!(netd.grants(), 1);
        // The rich thread paid only the actual cost (~9.5 J) and keeps its
        // surplus rather than having everything confiscated into the pool.
        let k = Actor::kernel();
        let remaining = rig.graph.level(&k, r).unwrap();
        assert!(
            remaining >= Energy::from_joules(8),
            "requester keeps surplus, has {remaining}"
        );
    }

    #[test]
    fn two_waiters_pool_energy_and_proceed_together() {
        // The Fig 8/13b mechanism: 37.5 mW each is not enough alone, but
        // pooling gets the radio up and both requests through.
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let k = Actor::kernel();
        let battery = rig.graph.battery();
        let mut reserves = Vec::new();
        for name in ["rss", "mail"] {
            let r = rig
                .graph
                .create_reserve(&k, name, Label::default_label())
                .unwrap();
            rig.graph
                .create_tap(
                    &k,
                    &format!("{name}-tap"),
                    battery,
                    r,
                    RateSpec::constant(Power::from_microwatts(37_500)),
                    Label::default_label(),
                )
                .unwrap();
            reserves.push(r);
        }
        assert_eq!(
            netd.request(&mut rig.env(), req(1, reserves[0], 256)),
            SendVerdict::Blocked
        );
        assert_eq!(
            netd.request(&mut rig.env(), req(2, reserves[1], 256)),
            SendVerdict::Blocked
        );
        // 75 mW pooled: 11.875 J threshold needs ≈ 158 s.
        let mut woken = Vec::new();
        for _ in 0..200 {
            rig.advance(SimDuration::from_secs(1));
            woken = netd.poll(&mut rig.env());
            if !woken.is_empty() {
                break;
            }
        }
        assert_eq!(woken.len(), 2, "both threads proceed together");
        assert!(rig.arm9.radio().is_active());
        assert!(rig.now < SimTime::from_secs(180), "granted at {}", rig.now);
        assert_eq!(netd.grants(), 1);
        assert_eq!(netd.waiting(), 0);
    }

    #[test]
    fn active_radio_makes_sends_cheap() {
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let rich = rig.reserve_with("rich", 20);
        let poor = rig.reserve_with("poor", 1);
        assert_eq!(
            netd.request(&mut rig.env(), req(1, rich, 100)),
            SendVerdict::Sent
        );
        // One second later the radio is active: the marginal cost of a poor
        // thread's send is ~1 s of plateau (≈0.43 J), covered by its 1 J.
        rig.advance(SimDuration::from_secs(1));
        assert_eq!(
            netd.request(&mut rig.env(), req(2, poor, 100)),
            SendVerdict::Sent
        );
        assert_eq!(netd.grants(), 2);
    }

    #[test]
    fn rx_costs_are_billed_to_requester() {
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let r = rig.reserve_with("poller", 20);
        let request = SendRequest {
            thread: ThreadId::test_id(1),
            reserve: r,
            byte_reserve: None,
            tx_bytes: 64,
            rx_bytes: 4_096,
            extra_delay: SimDuration::ZERO,
            wakes: false,
        };
        assert_eq!(netd.request(&mut rig.env(), request), SendVerdict::Sent);
        assert_eq!(rig.outbox.len(), 1);
        assert_eq!(rig.outbox[0].bill, Some(r));
        assert_eq!(rig.outbox[0].bytes, 4_096);
    }

    #[test]
    fn pool_is_decay_exempt() {
        let mut rig = Rig::new();
        let netd = CoopNetd::with_defaults(&mut rig.graph);
        let pool = netd.pool_reserve().unwrap();
        assert!(rig.graph.reserve(pool).unwrap().is_decay_exempt());
    }

    #[test]
    fn conservation_through_netd_cycle() {
        let mut rig = Rig::new();
        let mut netd = CoopNetd::with_defaults(&mut rig.graph);
        let r = rig.reserve_with("poller", 2);
        let _ = netd.request(&mut rig.env(), req(1, r, 100));
        for _ in 0..300 {
            rig.advance(SimDuration::from_secs(1));
            let _ = netd.poll(&mut rig.env());
            assert!(rig.graph.totals().conserved());
        }
    }
}
