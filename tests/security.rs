//! Security integration tests: reserves and taps are protected by HiStar
//! labels end to end (paper §3.5), exercised through thread syscalls.

use cinder::core::{Actor, GraphError, RateSpec};
use cinder::kernel::{Ctx, FnProgram, Kernel, KernelConfig, KernelError, Step};
use cinder::label::{Label, Level, PrivilegeSet};
use cinder::sim::{Energy, Power, SimTime};

/// A plugin thread cannot observe, drain, or tap the browser's protected
/// reserve — but the browser (owning the category) can.
#[test]
fn plugin_cannot_touch_protected_reserve() {
    // Decay off so the final balance check is exact.
    let mut k = Kernel::new(KernelConfig {
        graph: cinder::core::GraphConfig {
            decay: None,
            ..cinder::core::GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let cat = k.alloc_category();
    let secret = Label::with(&[(cat, Level::L3)]);
    let root = Actor::kernel();
    let battery = k.battery();
    let protected = k
        .graph_mut()
        .create_reserve(&root, "browser-secret", secret)
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, protected, Energy::from_joules(10))
        .unwrap();

    // Plugin thread: unprivileged, funded.
    let plugin_r = k
        .graph_mut()
        .create_reserve(&root, "plugin", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, plugin_r, Energy::from_joules(1))
        .unwrap();
    k.spawn_unprivileged(
        "plugin",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            assert!(matches!(
                ctx.level(protected),
                Err(KernelError::Graph(GraphError::PermissionDenied { .. }))
            ));
            assert!(ctx
                .transfer(protected, ctx.active_reserve(), Energy::from_joules(1))
                .is_err());
            assert!(ctx
                .create_tap(
                    "siphon",
                    protected,
                    ctx.active_reserve(),
                    RateSpec::constant(Power::from_watts(1)),
                    Label::default_label(),
                )
                .is_err());
            Step::Exit
        })),
        plugin_r,
    );

    // Browser thread: owns the category.
    let browser_r = k
        .graph_mut()
        .create_reserve(&root, "browser", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, browser_r, Energy::from_joules(1))
        .unwrap();
    let browser_actor = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
    k.spawn(
        "browser",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            assert_eq!(ctx.level(protected).unwrap(), Energy::from_joules(10));
            ctx.transfer(protected, ctx.active_reserve(), Energy::from_joules(2))
                .unwrap();
            Step::Exit
        })),
        browser_r,
        browser_actor,
    );
    k.run_until(SimTime::from_secs(1));
    // The browser's transfer went through; the plugin's attempts did not.
    assert_eq!(
        k.graph().reserve(protected).unwrap().balance(),
        Energy::from_joules(8)
    );
}

/// Tap rate changes require modify on the *tap's* label (§5.4's task
/// manager privilege), independent of reserve permissions.
#[test]
fn tap_control_is_label_protected() {
    let mut k = Kernel::with_defaults();
    let cat = k.alloc_category();
    let manager = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
    let root = Actor::kernel();
    let battery = k.battery();
    let app = k
        .graph_mut()
        .create_reserve(&root, "app", Label::default_label())
        .unwrap();
    let tap = k
        .graph_mut()
        .create_tap(
            &manager,
            "fg",
            battery,
            app,
            RateSpec::constant(Power::ZERO),
            Label::with(&[(cat, Level::L0)]),
        )
        .unwrap();
    let app_actor = Actor::unprivileged();
    assert!(matches!(
        k.graph_mut()
            .set_tap_rate(&app_actor, tap, RateSpec::constant(Power::from_watts(1))),
        Err(GraphError::PermissionDenied { .. })
    ));
    assert!(k
        .graph_mut()
        .set_tap_rate(
            &manager,
            tap,
            RateSpec::constant(Power::from_milliwatts(137))
        )
        .is_ok());
    // Deleting someone else's tap is equally refused.
    assert!(matches!(
        k.graph_mut().delete_tap(&app_actor, tap),
        Err(GraphError::PermissionDenied { .. })
    ));
}

/// Only the kernel grants decay exemption (netd's trusted pool, §5.5.2).
#[test]
fn decay_exemption_is_kernel_only() {
    let mut k = Kernel::with_defaults();
    let root = Actor::kernel();
    let r = k
        .graph_mut()
        .create_reserve(&root, "pool", Label::default_label())
        .unwrap();
    let user = Actor::unprivileged();
    assert!(matches!(
        k.graph_mut().set_decay_exempt(&user, r, true),
        Err(GraphError::PermissionDenied { .. })
    ));
    k.graph_mut().set_decay_exempt(&root, r, true).unwrap();
    assert!(k.graph().reserve(r).unwrap().is_decay_exempt());
}

/// Gate entry requires the gate's label to be observable (HiStar's
/// protected control transfer).
#[test]
fn gate_entry_is_label_checked() {
    let mut k = Kernel::with_defaults();
    let cat = k.alloc_category();
    let root_c = k.root_container();
    let gate = k
        .create_gate(
            root_c,
            "private-service",
            Label::with(&[(cat, Level::L3)]),
            cinder::sim::SimDuration::from_millis(10),
        )
        .unwrap();
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, "caller", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(1))
        .unwrap();
    k.spawn_unprivileged(
        "caller",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            assert!(matches!(
                ctx.gate_call(gate),
                Err(KernelError::Denied { .. })
            ));
            Step::Exit
        })),
        r,
    );
    k.run_until(SimTime::from_secs(1));
}

/// Unprivileged threads cannot mint integrity-protected reserves.
#[test]
fn reserve_creation_is_label_checked() {
    let mut k = Kernel::with_defaults();
    let cat = k.alloc_category();
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, "r", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(1))
        .unwrap();
    k.spawn_unprivileged(
        "minter",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            let protected = Label::with(&[(cat, Level::L0)]);
            assert!(ctx.create_reserve("forged", protected).is_err());
            assert!(ctx.create_reserve("plain", Label::default_label()).is_ok());
            Step::Exit
        })),
        r,
    );
    k.run_until(SimTime::from_secs(1));
}
