//! Hierarchical deallocation: the browser's per-page tap pattern (§5.2).
//!
//! "When a particular page is no longer being handled (e.g. the user
//! navigates away) the taps associated with that page can be automatically
//! garbage collected, effectively revoking those power sources."

use cinder::core::{Actor, GraphConfig, RateSpec};
use cinder::kernel::{Kernel, KernelConfig, ObjectKind};
use cinder::label::Label;
use cinder::sim::{Energy, Power, SimTime};

fn kernel() -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    })
}

#[test]
fn navigating_away_revokes_page_taps() {
    let mut k = kernel();
    let root = k.root_container();
    let battery = k.battery();

    // The plugin handles three pages; the browser feeds it one tap per page
    // (scaling energy with page count), each owned by a page container.
    let kactor = Actor::kernel();
    let plugin = k
        .graph_mut()
        .create_reserve(&kactor, "plugin", Label::default_label())
        .unwrap();
    let mut pages = Vec::new();
    for i in 0..3 {
        let page = k
            .create_container(root, &format!("page{i}"), Label::default_label())
            .unwrap();
        k.create_tap_in(
            page,
            &format!("page{i}-tap"),
            battery,
            plugin,
            RateSpec::constant(Power::from_milliwatts(20)),
            Label::default_label(),
        )
        .unwrap();
        pages.push(page);
    }
    k.run_until(SimTime::from_secs(10));
    // Three 20 mW taps: 600 mJ after 10 s.
    let at_three = k.graph().reserve(plugin).unwrap().balance();
    assert_eq!(at_three, Energy::from_millijoules(600));

    // Navigate away from two pages: their taps die with the containers.
    k.unlink(pages[0]).unwrap();
    k.unlink(pages[1]).unwrap();
    assert_eq!(k.graph().tap_count(), 1);
    k.run_until(SimTime::from_secs(20));
    let at_one = k.graph().reserve(plugin).unwrap().balance();
    // Only 20 mW × 10 s = 200 mJ more arrived.
    assert_eq!(at_one - at_three, Energy::from_millijoules(200));
    assert!(k.graph().totals().conserved());
}

#[test]
fn unlinking_a_tree_reclaims_reserve_balances() {
    let mut k = kernel();
    let root = k.root_container();
    let battery = k.battery();
    let kactor = Actor::kernel();

    let app = k
        .create_container(root, "app", Label::default_label())
        .unwrap();
    let (_, r1) = k
        .create_reserve_in(app, "r1", Label::default_label())
        .unwrap();
    let sub = k
        .create_container(app, "sub", Label::default_label())
        .unwrap();
    let (_, r2) = k
        .create_reserve_in(sub, "r2", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&kactor, battery, r1, Energy::from_joules(3))
        .unwrap();
    k.graph_mut()
        .transfer(&kactor, battery, r2, Energy::from_joules(4))
        .unwrap();
    let before = k.graph().reserve(battery).unwrap().balance();

    // Unlink the whole app subtree: both reserves return their energy.
    k.unlink(app).unwrap();
    let after = k.graph().reserve(battery).unwrap().balance();
    assert_eq!(after - before, Energy::from_joules(7));
    assert_eq!(k.graph().reserve_count(), 1);
    assert!(k.object(app).is_none());
    assert!(k.object(sub).is_none());
    assert!(k.graph().totals().conserved());
}

#[test]
fn segments_and_address_spaces_are_objects_too() {
    let mut k = kernel();
    let root = k.root_container();
    let seg = k
        .create_segment(root, "code", Label::default_label(), vec![0xde, 0xad])
        .unwrap();
    let aspace = k
        .create_address_space(root, "as", Label::default_label(), vec![seg])
        .unwrap();
    assert_eq!(k.object(seg).unwrap().kind(), ObjectKind::Segment);
    assert_eq!(k.object(aspace).unwrap().kind(), ObjectKind::AddressSpace);
    let count = k.object_count();
    k.unlink(aspace).unwrap();
    assert_eq!(k.object_count(), count - 1);
    // The segment survives: it was linked to the root, not the aspace.
    assert!(k.object(seg).is_some());
}

#[test]
fn unlinked_thread_stops_running() {
    let mut k = kernel();
    let kactor = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&kactor, "r", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&kactor, battery, r, Energy::from_joules(100))
        .unwrap();
    let t = k.spawn_unprivileged("spin", Box::new(cinder::apps::Spinner::new()), r);
    k.run_until(SimTime::from_secs(2));
    let spent_before = k.thread_consumed(t);
    assert!(spent_before.is_positive());
    // Find the thread's kernel object and unlink it.
    k.kill(t);
    k.run_until(SimTime::from_secs(4));
    assert_eq!(k.thread_consumed(t), spent_before);
}
