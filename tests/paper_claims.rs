//! End-to-end integration tests asserting the paper's headline claims
//! through the public facade crate, spanning every workspace member.

use cinder::apps::{
    build_browser, energywrap, BrowserConfig, ForkPlan, ForkingSpinner, PeriodicPoller, PollerLog,
    Spinner,
};
use cinder::core::{Actor, GraphConfig, RateSpec};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::net::{CoopNetd, UncoopStack};
use cinder::sim::{Energy, Power, SimTime};

fn kernel_no_decay() -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    })
}

fn reserve_with_tap(k: &mut Kernel, name: &str, rate: Power) -> cinder::core::ReserveId {
    let root = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&root, name, Label::default_label())
        .unwrap();
    g.create_tap(
        &root,
        &format!("{name}-tap"),
        battery,
        r,
        RateSpec::constant(rate),
        Label::default_label(),
    )
    .unwrap();
    r
}

/// Fig 1's promise: a 750 mW tap bounds drain so 15 kJ lasts ≥ 5 hours,
/// no matter what the application does.
#[test]
fn fig1_tap_bounds_battery_life() {
    let mut k = kernel_no_decay();
    let r = reserve_with_tap(&mut k, "browser", Power::from_milliwatts(750));
    k.spawn_unprivileged("browser", Box::new(Spinner::new()), r);
    k.run_until(SimTime::from_secs(3_600));
    let battery = k.graph().reserve(k.battery()).unwrap().balance();
    let drained = Energy::from_joules(15_000) - battery;
    // One hour at 750 mW is at most 2700 J (plus one flow tick of slack).
    assert!(
        drained <= Energy::from_millijoules(2_700_100),
        "drained {drained}"
    );
}

/// §6.1 / Fig 9: A's share survives B's forking because B subdivides its
/// own reserve rather than sharing it.
#[test]
fn isolation_survives_forking() {
    let mut k = kernel_no_decay();
    let ra = reserve_with_tap(&mut k, "A", Power::from_microwatts(68_500));
    let rb = reserve_with_tap(&mut k, "B", Power::from_microwatts(68_500));
    let a = k.spawn_unprivileged("A", Box::new(Spinner::new()), ra);
    k.spawn_unprivileged(
        "B",
        Box::new(ForkingSpinner::new(vec![
            ForkPlan {
                at: SimTime::from_secs(5),
                name: "B1".into(),
                tap_rate: Power::from_microwatts(17_125),
            },
            ForkPlan {
                at: SimTime::from_secs(10),
                name: "B2".into(),
                tap_rate: Power::from_microwatts(17_125),
            },
        ])),
        rb,
    );
    k.run_until(SimTime::from_secs(40));
    let est = k.thread_power_estimate(a).as_milliwatts_f64();
    assert!((est - 68.5).abs() < 7.0, "A estimate {est} mW");
    // Conservation across the whole kernel run.
    assert!(k.graph().totals().conserved());
}

/// §6.1: the sum of per-process accounting estimates matches the metered
/// CPU draw (paper: "closely matches the measured true power consumption").
#[test]
fn accounting_sums_to_measured_cpu_power() {
    let mut k = kernel_no_decay();
    let ra = reserve_with_tap(&mut k, "A", Power::from_microwatts(68_500));
    let rb = reserve_with_tap(&mut k, "B", Power::from_microwatts(68_500));
    let a = k.spawn_unprivileged("A", Box::new(Spinner::new()), ra);
    let b = k.spawn_unprivileged("B", Box::new(Spinner::new()), rb);
    let cp = k.meter().checkpoint();
    k.run_until(SimTime::from_secs(30));
    let measured = k.meter().average_power_since(cp).as_milliwatts_f64() - 699.0;
    let estimated = k.thread_power_estimate(a).as_milliwatts_f64()
        + k.thread_power_estimate(b).as_milliwatts_f64();
    assert!(
        (measured - estimated).abs() < 10.0,
        "measured CPU {measured} mW vs accounted {estimated} mW"
    );
}

/// §6.4 / Table 1: cooperation cuts active radio time ≥ 35% and total
/// energy ≥ 8% for the same delivered work.
#[test]
fn cooperation_saves_radio_energy() {
    let run = |coop: bool| {
        let mut k = Kernel::new(KernelConfig {
            seed: 99,
            meter_trace: true,
            ..KernelConfig::default()
        });
        if coop {
            let netd = CoopNetd::with_defaults(k.graph_mut());
            k.install_net(Box::new(netd));
        } else {
            k.install_net(Box::new(UncoopStack::new()));
        }
        let log = PollerLog::shared();
        let r1 = reserve_with_tap(&mut k, "rss", Power::from_microwatts(99_000));
        let r2 = reserve_with_tap(&mut k, "mail", Power::from_microwatts(99_000));
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r1);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r2);
        let end = SimTime::from_secs(1_201);
        k.run_until(end);
        let polls = log.borrow().sends.len();
        (
            k.meter().total_energy().as_joules_f64(),
            k.arm9().radio().total_active(end).as_secs_f64(),
            polls,
        )
    };
    let (uncoop_j, uncoop_active, uncoop_polls) = run(false);
    let (coop_j, coop_active, coop_polls) = run(true);
    assert!(
        coop_active <= uncoop_active * 0.65,
        "active: coop {coop_active} vs uncoop {uncoop_active}"
    );
    assert!(
        coop_j <= uncoop_j * 0.92,
        "energy: coop {coop_j} vs uncoop {uncoop_j}"
    );
    assert!(
        coop_polls as f64 >= uncoop_polls as f64 * 0.9,
        "equivalent work: coop {coop_polls} vs uncoop {uncoop_polls}"
    );
}

/// §5.1: energywrap contains a hog without affecting an unwrapped sibling.
#[test]
fn energywrap_contains_hogs() {
    let mut k = kernel_no_decay();
    let battery = k.battery();
    let root = Actor::kernel();
    let free_r = k
        .graph_mut()
        .create_reserve(&root, "free", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, free_r, Energy::from_joules(500))
        .unwrap();
    let free = k.spawn_unprivileged("free", Box::new(Spinner::new()), free_r);
    let hog = energywrap(
        &mut k,
        battery,
        Power::from_milliwatts(10),
        "hog",
        Box::new(Spinner::new()),
    )
    .unwrap();
    k.run_until(SimTime::from_secs(60));
    assert!(k.thread_consumed(hog.thread) <= Energy::from_millijoules(610));
    assert!(k.thread_power_estimate(free).as_milliwatts_f64() > 120.0);
}

/// §5.2.1 / Fig 6b: backward proportional taps return unused plugin energy;
/// the equilibrium is feed-rate ÷ fraction (70 mW / 0.1 = 700 mJ).
#[test]
fn backward_taps_reclaim_unused_energy() {
    let mut k = kernel_no_decay();
    let h = build_browser(&mut k, BrowserConfig::fig6b()).unwrap();
    k.kill(h.plugin); // idle plugin: pure accumulation vs reclamation
    k.run_until(SimTime::from_secs(400));
    let level = k.graph().reserve(h.plugin_reserve).unwrap().balance();
    let err = (level - Energy::from_millijoules(700))
        .as_microjoules()
        .abs();
    assert!(err < 30_000, "plugin reserve {level}");
}

/// §5.2.2: the global decay makes large-scale hoarding impossible — an idle
/// stash halves every 10 minutes.
#[test]
fn decay_defeats_hoarding() {
    let mut k = Kernel::new(KernelConfig::default()); // decay ON
    let root = Actor::kernel();
    let battery = k.battery();
    let stash = k
        .graph_mut()
        .create_reserve(&root, "stash", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, stash, Energy::from_joules(1_000))
        .unwrap();
    k.run_until(SimTime::from_secs(1_200)); // two half-lives
    let left = k.graph().reserve(stash).unwrap().balance().as_joules_f64();
    assert!((left - 250.0).abs() < 6.0, "stash at {left} J");
    assert!(k.graph().totals().conserved());
}

/// The run loop is deterministic: same seed, same joule count.
#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut k = Kernel::new(KernelConfig {
            seed: 1234,
            meter_trace: true,
            ..KernelConfig::default()
        });
        let netd = CoopNetd::with_defaults(k.graph_mut());
        k.install_net(Box::new(netd));
        let log = PollerLog::shared();
        let r = reserve_with_tap(&mut k, "rss", Power::from_microwatts(99_000));
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log)), r);
        k.run_until(SimTime::from_secs(400));
        k.meter().total_energy().as_microjoules()
    };
    assert_eq!(run(), run());
}

/// Radio activity is billed after the fact for received data (§5.5.2):
/// echo replies debit the requester's reserve, possibly into debt.
#[test]
fn rx_billing_lands_on_requester() {
    let mut k = Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let netd = CoopNetd::with_defaults(k.graph_mut());
    k.install_net(Box::new(netd));
    let log = PollerLog::shared();
    // Rich poller: sends immediately, then receives 8 KiB billed later.
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, "poller", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(20))
        .unwrap();
    k.spawn_unprivileged("poller", Box::new(PeriodicPoller::rss(log.clone())), r);
    k.run_until(SimTime::from_secs(5));
    assert_eq!(log.borrow().sends.len(), 1);
    let stats = k.graph().reserve(r).unwrap().stats();
    // 8192 B at 2.5 µJ/B-per-kB = 20.48 mJ of rx billing, plus CPU quanta.
    assert!(
        stats.consumed >= Energy::from_microjoules(20_480),
        "rx billed: {:?}",
        stats.consumed
    );
    assert!(k.graph().totals().conserved());
}
