//! Offload smoke run: one device pricing its work against a shared cloud
//! backend, then a small offload-heavy fleet against the same economy.
//!
//! ```text
//! cargo run --release --example offload_smoke
//! ```
//!
//! The single device runs twice — against a responsive backend (items ship
//! remote through the `offload` syscall) and against a saturated one (the
//! break-even policy prices every item back to local compute). The fleet
//! pass spot-checks the determinism contract and prints the economy's
//! aggregate price.

use cinder::apps::{OffloadLog, Offloader, OffloaderConfig, TraceBackend};
use cinder::core::{Actor, RateSpec};
use cinder::fleet::{run_fleet_with, Scenario};
use cinder::kernel::{Kernel, KernelConfig, OffloadStats};
use cinder::label::Label;
use cinder::net::CoopNetd;
use cinder::offload::OffloadProfile;
use cinder::sim::{Energy, Power, SimDuration, SimTime};

const HORIZON: SimDuration = SimDuration::from_secs(3_600);

/// One offloader device against the given backend profile.
fn device(profile: OffloadProfile) -> (OffloadStats, u64, u64, u64) {
    let mut k = Kernel::new(KernelConfig {
        seed: 11,
        idle_skip: true,
        ..KernelConfig::default()
    });
    let netd = CoopNetd::with_defaults(k.graph_mut());
    k.install_net(Box::new(netd));
    k.install_offload(Box::new(TraceBackend::build(profile, HORIZON)));

    // A reserve seeded and fed from the battery: the break-even inputs
    // (reserve level, radio price, CPU price) stay live all hour.
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, "offload", Label::default_label())
        .expect("root creates the reserve");
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(30))
        .expect("battery covers the seed");
    k.graph_mut()
        .create_tap(
            &root,
            "offload-feed",
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(60_000)),
            Label::default_label(),
        )
        .expect("root taps the battery");

    let log = OffloadLog::shared();
    let offloader = Offloader::new(OffloaderConfig::from_profile(&profile), log.clone());
    k.spawn_unprivileged("offloader", Box::new(offloader), r);
    k.run_until(SimTime::ZERO + HORIZON);

    let stats = k.offload_stats();
    let log = log.borrow();
    (stats, log.items, log.remote, log.local)
}

fn main() {
    let responsive = OffloadProfile {
        capacity: 64,
        ..OffloadProfile::default()
    };
    let saturated = OffloadProfile {
        capacity: 1,
        queue_limit: 4,
        load_devices: 100_000,
        ..OffloadProfile::default()
    };

    for (name, profile) in [("responsive", responsive), ("saturated", saturated)] {
        let (stats, items, remote, local) = device(profile);
        println!(
            "{name:>10} backend: {items} items — {remote} remote, {local} local \
             ({} accepted, {} rejected, {} timed out, mean latency {:.0} ms)",
            stats.accepted,
            stats.rejected,
            stats.timed_out,
            if stats.completed > 0 {
                stats.latency_us_sum as f64 / stats.completed as f64 / 1e3
            } else {
                0.0
            }
        );
        assert_eq!(items, remote + local);
        match name {
            "responsive" => assert!(remote > local, "a cheap backend must win items"),
            _ => assert!(local > remote, "a saturated backend must lose items"),
        }
    }

    // The fleet pass: 100 offload-heavy devices against one shared trace,
    // byte-identical at any worker count.
    let scenario = Scenario {
        horizon: HORIZON,
        ..Scenario::offload_heavy("offload-smoke", 42, 100, 64)
    };
    let report = run_fleet_with(&scenario, 4);
    assert_eq!(
        report.to_json(),
        run_fleet_with(&scenario, 1).to_json(),
        "offload fleet must not depend on the worker count"
    );
    let summary = report.summary();
    assert!(summary.offload_completed > 0, "the fleet must offload");
    let lat = summary.offload_latency_s.expect("completed requests");
    println!(
        "fleet: {} devices — {} requests completed ({} rejected, {} timed out), \
         latency p50 {:.0} ms p99 {:.0} ms, {:.1} J/request",
        scenario.devices,
        summary.offload_completed,
        summary.offload_rejected,
        summary.offload_timed_out,
        lat.p50 * 1e3,
        lat.p99 * 1e3,
        summary.joules_per_request
    );
    println!("offload smoke: OK");
}
