//! Fleet smoke run: a 200-device population for one simulated hour,
//! sharded across workers, with the aggregate report printed and the
//! determinism contract spot-checked.
//!
//! ```text
//! cargo run --release --example fleet_smoke                    # §5/§6 mixture
//! cargo run --release --example fleet_smoke -- peripheral-mix  # + navigator/screen-on
//! ```
//!
//! `peripheral-mix` runs the all-tags mixture (every paper workload plus
//! the reserve-gated peripheral workloads) and additionally checks that
//! the peripheral telemetry is live.

use cinder::fleet::{run_fleet, run_fleet_with, Scenario};
use cinder::sim::SimDuration;

fn main() {
    let peripheral_mix = std::env::args().nth(1).as_deref() == Some("peripheral-mix");
    let base = if peripheral_mix {
        Scenario::all_workloads("fleet-smoke-peripheral", 42, 200)
    } else {
        Scenario::mixed("fleet-smoke", 42, 200)
    };
    let scenario = Scenario {
        horizon: SimDuration::from_secs(3_600),
        ..base
    };
    println!(
        "fleet: {} devices, {:.0} s horizon, seed {}",
        scenario.devices,
        scenario.horizon.as_secs_f64(),
        scenario.seed
    );

    let start = std::time::Instant::now();
    let report = run_fleet(&scenario);
    let wall = start.elapsed().as_secs_f64();

    // The contract the property tests enforce, spot-checked live: a
    // different worker count produces the identical report.
    let single = run_fleet_with(&scenario, 1);
    assert_eq!(
        report.to_json(),
        single.to_json(),
        "aggregate report must not depend on the worker count"
    );

    print!("{}", report.to_json());
    let summary = report.summary();
    if peripheral_mix {
        assert!(
            summary.peripheral_energy_j > 0.0,
            "the peripheral mixture must burn backlight/GPS energy"
        );
        println!(
            "peripherals: {:.1} kJ drained, {} forced shutdowns across the fleet",
            summary.peripheral_energy_j / 1e3,
            summary.forced_shutdowns
        );
    }
    let lifetime = summary.lifetime_h.expect("non-empty fleet");
    println!("lifetime histogram (hours):");
    for (lo, count) in report.lifetime_histogram(8) {
        println!("  {:>6.2} h | {}", lo, "#".repeat(count.min(60)));
    }
    println!(
        "{} simulated device-hours in {wall:.2} s wall ({:.0}x real time); \
         p50 lifetime {:.2} h, p99 {:.2} h",
        scenario.devices,
        scenario.devices as f64 * scenario.horizon.as_secs_f64() / wall,
        lifetime.p50,
        lifetime.p99,
    );

    // CSV artefacts land next to the experiment outputs.
    let dir = std::path::PathBuf::from("target/experiments");
    match report.write_csv_dir(&dir) {
        Ok(()) => println!("(per-device CSVs written to {})", dir.display()),
        Err(e) => eprintln!("warning: could not write CSVs: {e}"),
    }
}
