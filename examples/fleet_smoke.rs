//! Fleet smoke run: a 200-device mixed-workload population for one
//! simulated hour, sharded across workers, with the aggregate report
//! printed and the determinism contract spot-checked.
//!
//! ```text
//! cargo run --release --example fleet_smoke
//! ```

use cinder::fleet::{run_fleet, run_fleet_with, Scenario};
use cinder::sim::SimDuration;

fn main() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(3_600),
        ..Scenario::mixed("fleet-smoke", 42, 200)
    };
    println!(
        "fleet: {} devices, {:.0} s horizon, seed {}",
        scenario.devices,
        scenario.horizon.as_secs_f64(),
        scenario.seed
    );

    let start = std::time::Instant::now();
    let report = run_fleet(&scenario);
    let wall = start.elapsed().as_secs_f64();

    // The contract the property tests enforce, spot-checked live: a
    // different worker count produces the identical report.
    let single = run_fleet_with(&scenario, 1);
    assert_eq!(
        report.to_json(),
        single.to_json(),
        "aggregate report must not depend on the worker count"
    );

    print!("{}", report.to_json());
    let summary = report.summary();
    let lifetime = summary.lifetime_h.expect("non-empty fleet");
    println!("lifetime histogram (hours):");
    for (lo, count) in report.lifetime_histogram(8) {
        println!("  {:>6.2} h | {}", lo, "#".repeat(count.min(60)));
    }
    println!(
        "{} simulated device-hours in {wall:.2} s wall ({:.0}x real time); \
         p50 lifetime {:.2} h, p99 {:.2} h",
        scenario.devices,
        scenario.devices as f64 * scenario.horizon.as_secs_f64() / wall,
        lifetime.p50,
        lifetime.p99,
    );

    // CSV artefacts land next to the experiment outputs.
    let dir = std::path::PathBuf::from("target/experiments");
    match report.write_csv_dir(&dir) {
        Ok(()) => println!("(per-device CSVs written to {})", dir.display()),
        Err(e) => eprintln!("warning: could not write CSVs: {e}"),
    }
}
