//! The browser/plugin topology of paper §5.2 (Figs 6a and 6b).
//!
//! A browser rate-limits an untrusted plugin to 10% of its own energy; with
//! backward proportional taps (Fig 6b) any energy the plugin doesn't spend
//! flows back for others to use, capping its reserve at ~700 mJ.
//!
//! ```text
//! cargo run --example browser_plugin
//! ```

use cinder::apps::{build_browser, BrowserConfig};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::sim::SimTime;

fn run(label: &str, config: BrowserConfig, idle_plugin: bool) {
    let mut kernel = Kernel::new(KernelConfig::default());
    let handles = build_browser(&mut kernel, config).expect("build browser");
    if idle_plugin {
        // Kill the plugin so we can watch its reserve's steady state.
        kernel.kill(handles.plugin);
    }
    kernel.run_until(SimTime::from_secs(300));
    let plugin_level = kernel
        .graph()
        .reserve(handles.plugin_reserve)
        .unwrap()
        .balance();
    let plugin_est = kernel.thread_power_estimate(handles.plugin);
    let browser_spent = kernel.thread_consumed(handles.browser);
    println!("[{label}]");
    println!(
        "  plugin reserve after 300 s: {:.3} J",
        plugin_level.as_joules_f64()
    );
    println!("  plugin power estimate:      {plugin_est}");
    println!(
        "  browser progress:           {:.2} J of page rendering\n",
        browser_spent.as_joules_f64()
    );
}

fn main() {
    println!("browser 694 mW; plugin tap 70 mW (10%); extension 20 mW\n");

    // A hog plugin cannot exceed its 70 mW tap, and the browser keeps
    // rendering pages (isolation + subdivision).
    run(
        "fig 6a: hog plugin, plain taps",
        BrowserConfig::fig6a(),
        false,
    );

    // An idle plugin under Fig 6a hoards its unused feed…
    run("fig 6a: idle plugin (hoards)", BrowserConfig::fig6a(), true);

    // …but under Fig 6b the 0.1×/s backward tap caps it at 70 mW / 0.1 =
    // 700 mJ, returning the excess.
    run(
        "fig 6b: idle plugin + 0.1x backward taps (caps at ~0.7 J)",
        BrowserConfig::fig6b(),
        true,
    );
}
