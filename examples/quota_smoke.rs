//! §9 enforced online: a 5 MB data plan throttling a hungry poller *in the
//! kernel* — sends the plan cannot cover block at the syscall, the radio
//! goes quiet, and the plan reserve never meaningfully overdraws.
//!
//! ```text
//! cargo run --example quota_smoke
//! ```

use cinder::apps::{PeriodicPoller, PollerLog};
use cinder::core::{quota, Actor, RateSpec, ResourceKind};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::net::UncoopStack;
use cinder::sim::{Power, SimDuration, SimTime};

fn main() {
    let mut k = Kernel::new(KernelConfig {
        seed: 7,
        ..KernelConfig::default()
    });
    k.install_net(Box::new(UncoopStack::new()));

    // A greedy poller: every 5 s it pulls a 64 KB payload (~46 MB/hour of
    // appetite), with ample energy behind it.
    let root = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let energy = g
        .create_reserve(&root, "poller-energy", Label::default_label())
        .unwrap();
    g.create_tap(
        &root,
        "energy-tap",
        battery,
        energy,
        RateSpec::constant(Power::from_milliwatts(500)),
        Label::default_label(),
    )
    .unwrap();
    let log = PollerLog::shared();
    let poller = k.spawn_unprivileged(
        "greedy",
        Box::new(PeriodicPoller::new(
            SimTime::ZERO,
            SimDuration::from_secs(5),
            2_048,
            63_488,
            log.clone(),
        )),
        energy,
    );

    // The 5 MB plan: a NetworkBytes root pool granted to a plan reserve
    // that gates the poller's sends online.
    let plan = k.install_byte_plan(5_000_000, &[poller]).unwrap();

    println!("5 MB plan vs a poller wanting ~46 MB/hour (64 KB every 5 s)\n");
    println!(
        "{:>6}  {:>9}  {:>5}  {:>8}  state",
        "t", "left (B)", "polls", "radio tx"
    );
    for minute in [1u64, 2, 4, 6, 8, 10, 20, 40, 60] {
        k.run_until(SimTime::from_secs(minute * 60));
        let left = quota::as_bytes(k.graph().reserve(plan).unwrap().balance());
        let polls = log.borrow().sends.len();
        let state = if k.thread_awaiting_bytes(poller) {
            "blocked-on-bytes"
        } else {
            "polling"
        };
        println!(
            "{:>5}m  {:>9}  {:>5}  {:>8}  {}",
            minute,
            left,
            polls,
            k.arm9().radio().stats().tx_bytes,
            state,
        );
    }

    let held = k.thread_bytes_blocked(poller);
    println!(
        "\nThe plan covered {} polls (~{} KB each), then the kernel held {} send(s):",
        log.borrow().sends.len(),
        (2_048 + 63_488) / 1_024,
        held,
    );
    println!("exhaustion silences the device online — no offline replay involved.");
    for kind in ResourceKind::ALL {
        assert!(k.graph().totals_for(kind).conserved(), "{kind} conserved");
    }
}
