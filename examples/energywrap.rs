//! `energywrap` (paper §5.1, Fig 5): sandbox a buggy or malicious program
//! behind a rate-limited reserve, without the program cooperating.
//!
//! Two identical CPU hogs run side by side; one is wrapped at 10 mW.
//!
//! ```text
//! cargo run --example energywrap
//! ```

use cinder::apps::{energywrap, Spinner};
use cinder::core::Actor;
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::sim::{Energy, Power, SimTime};

fn main() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let root = Actor::kernel();
    let battery = kernel.battery();

    // An unconfined hog with its own funded reserve.
    let free_reserve = kernel
        .graph_mut()
        .create_reserve(&root, "free-hog", Label::default_label())
        .unwrap();
    kernel
        .graph_mut()
        .transfer(&root, battery, free_reserve, Energy::from_joules(1_000))
        .unwrap();
    let free = kernel.spawn_unprivileged("free-hog", Box::new(Spinner::new()), free_reserve);

    // The same program, wrapped: `energywrap 10mW hog` (Fig 5's sequence).
    let wrapped = energywrap(
        &mut kernel,
        battery,
        Power::from_milliwatts(10),
        "wrapped-hog",
        Box::new(Spinner::new()),
    )
    .expect("wrap");

    println!("two identical CPU hogs; one wrapped by `energywrap` at 10 mW\n");
    println!("{:>6} {:>16} {:>16}", "t(s)", "free hog", "wrapped hog");
    for s in [5u64, 15, 30, 60, 120] {
        kernel.run_until(SimTime::from_secs(s));
        println!(
            "{:>6} {:>16} {:>16}",
            s,
            format!(
                "{:.1} mW",
                kernel.thread_power_estimate(free).as_milliwatts_f64()
            ),
            format!(
                "{:.1} mW",
                kernel
                    .thread_power_estimate(wrapped.thread)
                    .as_milliwatts_f64()
            ),
        );
    }
    let spent_free = kernel.thread_consumed(free);
    let spent_wrapped = kernel.thread_consumed(wrapped.thread);
    println!(
        "\nafter 2 min: free hog spent {:.2} J, wrapped hog spent {:.2} J (≤ 1.2 J by its tap)",
        spent_free.as_joules_f64(),
        spent_wrapped.as_joules_f64()
    );
    assert!(spent_wrapped <= Energy::from_millijoules(1_250));
}
