//! The energy-aware image gallery of paper §5.3 / §6.2 (Figs 10 and 11).
//!
//! The downloader thread has its own reserve fed at 4 mW. Without scaling
//! it stalls whenever the reserve empties; with interlaced-PNG quality
//! scaling it finishes several times faster within the same energy budget.
//!
//! ```text
//! cargo run --release --example image_gallery
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use cinder::apps::{ImageViewer, ViewerConfig, ViewerLog};
use cinder::core::{Actor, RateSpec};
use cinder::hw::LaptopNet;
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::sim::{Energy, Power, SimTime};

fn run(config: ViewerConfig) -> Rc<RefCell<ViewerLog>> {
    let mut kernel = Kernel::new(KernelConfig {
        laptop: Some(LaptopNet::t60p()),
        battery: Energy::from_joules(50_000),
        ..KernelConfig::default()
    });
    let root = Actor::kernel();
    let battery = kernel.battery();
    let reserve = kernel
        .graph_mut()
        .create_reserve(&root, "downloader", Label::default_label())
        .unwrap();
    kernel
        .graph_mut()
        .transfer(&root, battery, reserve, Energy::from_microjoules(200_000))
        .unwrap();
    kernel
        .graph_mut()
        .create_tap(
            &root,
            "dl-tap",
            battery,
            reserve,
            RateSpec::constant(Power::from_microwatts(4_000)),
            Label::default_label(),
        )
        .unwrap();
    let log = ViewerLog::shared();
    kernel.spawn_unprivileged(
        "viewer",
        Box::new(ImageViewer::new(config, log.clone())),
        reserve,
    );
    kernel.run_until(SimTime::from_secs(3_000));
    log
}

fn main() {
    println!("8 batches × 4 images (~2.7 MiB each); pauses 40 s shrinking by 5 s\n");
    let plain = run(ViewerConfig::fig10());
    let adaptive = run(ViewerConfig::fig11());
    let p = plain.borrow();
    let a = adaptive.borrow();
    let tp = p.finished_at.expect("plain finished").as_secs_f64();
    let ta = a.finished_at.expect("adaptive finished").as_secs_f64();
    println!(
        "without scaling: {tp:>7.0} s, {:>6.1} MiB, stalled {:>6.1} s",
        p.total_bytes() as f64 / 1048576.0,
        p.stalled.as_secs_f64()
    );
    println!(
        "with scaling:    {ta:>7.0} s, {:>6.1} MiB, stalled {:>6.1} s",
        a.total_bytes() as f64 / 1048576.0,
        a.stalled.as_secs_f64()
    );
    println!("\nspeedup: {:.1}x (paper: ~5x)", tp / ta);
    println!(
        "smallest adaptive request: {:.0} KiB (interlaced PNG partial data)",
        a.images.iter().map(|i| i.bytes).min().unwrap_or(0) as f64 / 1024.0
    );
}
