//! The task manager of paper §5.4 (Fig 7): foreground apps get a high-rate
//! tap, background apps share a trickle, and only the task manager holds
//! the privilege to flip the taps.
//!
//! ```text
//! cargo run --example background_tasks
//! ```

use cinder::apps::task_manager::{build_fg_bg, spawn_manager, FgBgConfig};
use cinder::apps::Spinner;
use cinder::core::Actor;
use cinder::core::{GraphError, RateSpec};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::sim::{Power, SimTime};

fn main() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let cfg = FgBgConfig::fig12a();
    let handles = build_fg_bg(&mut kernel, cfg).expect("topology");
    let a = kernel.spawn_unprivileged(
        "mail-app",
        Box::new(Spinner::new()),
        handles.app_reserves[0],
    );
    let b = kernel.spawn_unprivileged("rss-app", Box::new(Spinner::new()), handles.app_reserves[1]);
    spawn_manager(
        &mut kernel,
        &handles,
        cfg.fg_rate,
        vec![
            (SimTime::from_secs(10), Some(0)),
            (SimTime::from_secs(20), None),
            (SimTime::from_secs(30), Some(1)),
            (SimTime::from_secs(40), None),
        ],
    )
    .expect("manager");

    // Apps cannot touch the manager's taps: the tap label carries an
    // integrity category only the manager owns.
    let app_actor = Actor::unprivileged();
    let err = kernel
        .graph_mut()
        .set_tap_rate(
            &app_actor,
            handles.fg_taps[0],
            RateSpec::constant(Power::from_watts(5)),
        )
        .unwrap_err();
    assert!(matches!(err, GraphError::PermissionDenied { .. }));
    println!("app attempt to boost its own foreground tap: {err}\n");

    println!("{:>6} {:>12} {:>12}   focus", "t(s)", "mail-app", "rss-app");
    for s in (2..=60).step_by(2) {
        kernel.run_until(SimTime::from_secs(s));
        let focus = match s {
            11..=20 => "mail-app",
            31..=40 => "rss-app",
            _ => "-",
        };
        println!(
            "{:>6} {:>9.1} mW {:>9.1} mW   {focus}",
            s,
            kernel.thread_power_estimate(a).as_milliwatts_f64(),
            kernel.thread_power_estimate(b).as_milliwatts_f64(),
        );
    }
    println!("\nbackground apps crawl at ~7 mW; the focused app gets the full CPU.");
}
