//! Fault smoke run: one device's fault schedule and retry ladder as plain
//! values, then a small fault-heavy fleet under the calibrated storm.
//!
//! ```text
//! cargo run --release --example faults_smoke
//! ```
//!
//! The single-device pass shows the engine's two pure halves: a
//! [`FaultPlan`] generated from a seed (the same seed always yields the
//! same flaps and crash instants, quantum-aligned) and a [`RetryPolicy`]
//! backoff ladder walked by hand. The fleet pass runs the calibrated
//! fault storm, spot-checks the determinism contract, and prints the
//! fault ledger: flaps, link-down time, crashes and respawns, retries
//! spent and exhausted, battery fade.

use cinder::fleet::{run_fleet_with, FaultConfig, FaultPlan, RetryPolicy, Scenario};
use cinder::sim::{SimDuration, SimTime};

const HORIZON: SimDuration = SimDuration::from_secs(3_600);
const QUANTUM: SimDuration = SimDuration::from_millis(10);

fn main() {
    // --- The fault schedule: a pure function of (seed, quantum, horizon,
    // config). The same seed always describes the same storm.
    let config = FaultConfig::heavy(7);
    let plan = FaultPlan::generate(7, QUANTUM, HORIZON, &config);
    println!(
        "plan(seed 7): {} link flaps ({:.1} s down), {} crashes over {:.0} s",
        plan.flaps.len(),
        plan.link_down_us(HORIZON) as f64 / 1e6,
        plan.crashes.len(),
        HORIZON.as_secs_f64()
    );
    assert_eq!(
        plan,
        FaultPlan::generate(7, QUANTUM, HORIZON, &config),
        "the same seed must always describe the same storm"
    );
    assert!(!plan.flaps.is_empty() && !plan.crashes.is_empty());

    // --- The retry ladder: bounded exponential backoff with a deadline,
    // every attempt aligned to the scheduler quantum.
    let retry: RetryPolicy = config.retry.expect("the heavy profile retries");
    let started = SimTime::from_secs(10);
    let mut now = started;
    let mut failed = 1;
    print!("retry ladder from t=10 s:");
    while let Some(at) = retry.next_attempt_at(started, now, failed, QUANTUM) {
        print!(" attempt {} at {:.2} s", failed + 1, at.as_secs_f64());
        now = at;
        failed += 1;
    }
    println!(" — then give up ({} attempts max)", retry.max_attempts);
    assert!(failed <= retry.max_attempts, "the ladder is bounded");

    // --- The fleet pass: the calibrated storm over an offloading,
    // policy-controlled mixture, byte-identical at any worker count.
    let scenario = Scenario {
        horizon: HORIZON,
        ..Scenario::fault_heavy("faults-smoke", 42, 60)
    };
    let report = run_fleet_with(&scenario, 4);
    assert_eq!(
        report.to_json(),
        run_fleet_with(&scenario, 1).to_json(),
        "fault fleet must not depend on the worker count"
    );
    let s = report.summary();
    println!(
        "fleet: {} devices — {} flaps ({:.0} s down), {} crashes / {} restarts, \
         {} retries ({} exhausted), {:.0} J fade, {}/{} lifetime targets hit",
        s.devices,
        s.link_flaps,
        s.link_down_us as f64 / 1e6,
        s.crashes,
        s.restarts,
        s.retries,
        s.retries_exhausted,
        s.fade_j,
        s.lifetime_target_hits,
        s.devices
    );
    assert!(s.link_flaps > 0 && s.crashes > 0 && s.restarts > 0);
    assert!(s.retries > 0, "the resilience layer must engage");
    assert!(s.fade_j > 0.0, "batteries must age");
    println!("faults smoke: OK");
}
