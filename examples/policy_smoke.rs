//! Policy smoke run: one device's presence trace and pure policy
//! decision, then a small policy-heavy fleet under the user-aware
//! lifetime-target controller.
//!
//! ```text
//! cargo run --release --example policy_smoke
//! ```
//!
//! The single-device pass shows the two halves of the engine as plain
//! values: a presence trace generated from a seed (a pure function — the
//! same seed always yields the same user) and a `decide` call over
//! synthetic observables. The fleet pass runs the same population with
//! the policy on and off, spot-checks the determinism contract, and
//! prints what the controller bought: lifetime-target hits and joules.

use cinder::fleet::{run_fleet_with, PolicyConfig, PolicyVariant, PresenceTrace, Scenario};
use cinder::policy::{Policy, PolicyInputs, UserAwarePolicy};
use cinder::sim::{Energy, SimDuration, SimTime};

const HORIZON: SimDuration = SimDuration::from_secs(3_600);

fn main() {
    // --- The user model: a pure function of (seed, horizon).
    let trace = PresenceTrace::generate(7, HORIZON);
    let by_state = trace.seconds_by_state(HORIZON);
    println!(
        "presence(seed 7): active {} s, ambient {} s, away {} s, asleep {} s",
        by_state[0], by_state[1], by_state[2], by_state[3]
    );
    assert_eq!(
        by_state,
        PresenceTrace::generate(7, HORIZON).seconds_by_state(HORIZON),
        "the same seed must always describe the same user"
    );

    // --- The controller: a pure decision over plain observables.
    // Half the battery burned in a sixth of the target window — the
    // sustainable rate is well under the observed average, so the engine
    // throttles everything to the same ratio.
    let policy = UserAwarePolicy::new(HORIZON);
    let inputs = PolicyInputs {
        now: SimTime::from_secs(600),
        horizon: HORIZON,
        presence: trace.state_at(SimTime::from_secs(600)),
        battery_level: Energy::from_joules(300),
        battery_capacity: Energy::from_joules(600),
        taps: &[],
        backlight_enabled: true,
        backlight_drive_ppm: 1_000_000,
        offload_completed: 0,
    };
    let actions = policy.decide(&inputs);
    let cap = actions.backlight_cap_ppm.expect("the engine always caps");
    println!(
        "decision at 600 s (300/600 J left): backlight cap {:.1}% of full drive",
        cap as f64 / 1e4
    );
    assert!(cap < 1_000_000, "overdraw must throttle the backlight");

    // --- The fleet pass: the same population with the controller on and
    // off, byte-identical at any worker count.
    let on = Scenario {
        horizon: HORIZON,
        ..Scenario::policy_heavy("policy-smoke", 42, 60)
    };
    let off = Scenario {
        policy: Some(PolicyConfig::new(PolicyVariant::None, HORIZON)),
        ..on.clone()
    };
    let report = run_fleet_with(&on, 4);
    assert_eq!(
        report.to_json(),
        run_fleet_with(&on, 1).to_json(),
        "policy fleet must not depend on the worker count"
    );
    let aware = report.summary();
    let none = run_fleet_with(&off, 4).summary();
    println!(
        "fleet: {} devices — user-aware hits {}/{} lifetime targets vs {}/{} without \
         a policy ({:.1} kJ vs {:.1} kJ, {} re-rates, {} demotions)",
        on.devices,
        aware.lifetime_target_hits,
        aware.devices,
        none.lifetime_target_hits,
        none.devices,
        aware.fleet_energy_j / 1e3,
        none.fleet_energy_j / 1e3,
        aware.policy_rerates,
        aware.policy_demotions
    );
    assert!(aware.lifetime_target_hits > none.lifetime_target_hits);
    assert!(aware.fleet_energy_j < none.fleet_energy_j);
    println!("policy smoke: OK");
}
