//! Navigator smoke run: a single device duty-cycling its GPS under a
//! reserve, first healthily funded, then starved so the adaptive interval
//! and the kernel's forced shutdown both show up.
//!
//! ```text
//! cargo run --release --example navigator
//! ```

use cinder::apps::{NavLog, Navigator, NavigatorConfig};
use cinder::core::{Actor, RateSpec, ReserveId};
use cinder::kernel::{Kernel, KernelConfig, PeripheralKind};
use cinder::label::Label;
use cinder::sim::{Energy, Power, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Builds one navigator device: a GPS reserve seeded and fed from the
/// battery, the navigator thread drawing CPU from the same reserve.
fn device(feed_uw: u64, seed_j: i64) -> (Kernel, ReserveId, Rc<RefCell<NavLog>>) {
    let mut k = Kernel::new(KernelConfig {
        seed: 7,
        idle_skip: true,
        ..KernelConfig::default()
    });
    let root = Actor::kernel();
    let battery = k.battery();
    let gps_r = k
        .graph_mut()
        .create_reserve(&root, "gps", Label::default_label())
        .expect("root creates the gps reserve");
    k.graph_mut()
        .transfer(&root, battery, gps_r, Energy::from_joules(seed_j))
        .expect("battery covers the seed");
    k.graph_mut()
        .create_tap(
            &root,
            "gps-feed",
            battery,
            gps_r,
            RateSpec::constant(Power::from_microwatts(feed_uw)),
            Label::default_label(),
        )
        .expect("root taps the battery");
    let log = NavLog::shared();
    let nav = Navigator::new(NavigatorConfig::fleet_default(), gps_r, log.clone());
    k.spawn_unprivileged("nav", Box::new(nav), gps_r);
    (k, gps_r, log)
}

fn run(label: &str, feed_uw: u64, seed_j: i64, horizon_s: u64) -> (usize, u64, u64) {
    let (mut k, gps_r, log) = device(feed_uw, seed_j);
    let start = std::time::Instant::now();
    k.run_until(SimTime::from_secs(horizon_s));
    let wall = start.elapsed().as_secs_f64();
    let log = log.borrow();
    let residual = k
        .graph()
        .reserve(gps_r)
        .map(|r| r.balance())
        .unwrap_or(Energy::ZERO);
    let drained = k.peripheral_energy(PeripheralKind::Gps);
    let shutdowns = k.peripheral_forced_shutdowns(PeripheralKind::Gps);
    println!(
        "{label}: {} fixes, {} stretched sleeps, {} aborted, {:.1} J gps drain, \
         {:.1} J residual, {} forced shutdowns  ({:.0} s simulated in {:.3} s wall)",
        log.fixes.len(),
        log.stretched_sleeps,
        log.aborted_fixes,
        drained.as_microjoules() as f64 / 1e6,
        residual.as_microjoules() as f64 / 1e6,
        shutdowns,
        SimDuration::from_secs(horizon_s).as_secs_f64(),
        wall,
    );
    (log.fixes.len(), log.stretched_sleeps, shutdowns)
}

fn main() {
    println!("navigator: duty-cycled GPS fixes under a reserve-gated peripheral");
    // Healthily funded: fixes on the base cadence, no adaptation needed.
    let (fixes, stretched, shutdowns) = run("  funded (52.5 mW feed)", 52_500, 20, 3_600);
    assert!(fixes >= 40, "a funded navigator fixes steadily: {fixes}");
    assert_eq!(shutdowns, 0, "a funded receiver is never forced down");
    let _ = stretched;

    // Starved: the interval stretches and the kernel eventually cuts a fix.
    let (fixes, stretched, shutdowns) = run("  starved (15 mW feed) ", 15_000, 6, 3_600);
    assert!(fixes >= 1, "even a starved navigator lands some fixes");
    assert!(
        stretched >= 3,
        "a sagging reserve must stretch the interval: {stretched}"
    );
    assert!(
        shutdowns >= 1,
        "an empty reserve must force the receiver down: {shutdowns}"
    );
    println!("ok: adaptation and forced shutdown both observed");
}
