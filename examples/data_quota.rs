//! The paper's §9 future work, implemented: reserves and taps managing
//! *network bytes* instead of joules — "replacing the logical battery with
//! a pool of network bytes" to keep applications inside a data plan.
//!
//! ```text
//! cargo run --example data_quota
//! ```

use cinder::core::quota::{as_bytes, bytes, bytes_per_sec};
use cinder::core::{Actor, GraphConfig, RateSpec, ResourceGraph};
use cinder::label::Label;
use cinder::sim::SimTime;

fn main() {
    // A 5 MB monthly data plan is the root "battery".
    let mut plan = ResourceGraph::with_config(
        bytes(5_000_000),
        GraphConfig {
            decay: None, // data quotas do not decay
            ..GraphConfig::default()
        },
    );
    let admin = Actor::kernel();
    let pool = plan.battery();

    // A chatty ad-supported app is limited to 2 KB/s; the mail client gets
    // a 10 KB/s tap.
    let ads = plan
        .create_reserve(&admin, "ad-app", Label::default_label())
        .unwrap();
    let mail = plan
        .create_reserve(&admin, "mail", Label::default_label())
        .unwrap();
    plan.create_tap(
        &admin,
        "ads@2KBps",
        pool,
        ads,
        RateSpec::constant(bytes_per_sec(2_000)),
        Label::default_label(),
    )
    .unwrap();
    plan.create_tap(
        &admin,
        "mail@10KBps",
        pool,
        mail,
        RateSpec::constant(bytes_per_sec(10_000)),
        Label::default_label(),
    )
    .unwrap();

    println!("5 MB data plan; ad-app tapped at 2 KB/s, mail at 10 KB/s\n");
    for minute in 1..=5u64 {
        plan.flow_until(SimTime::from_secs(minute * 60));
        // The ad app tries to pull 1 MB of ads; the mail client syncs 200 KB.
        let ad_attempt = plan.consume(&admin, ads, bytes(1_000_000));
        let mail_attempt = plan.consume(&admin, mail, bytes(200_000));
        println!(
            "minute {minute}: ad 1MB fetch: {:<8} mail 200KB sync: {:<8} plan left: {} bytes",
            if ad_attempt.is_ok() { "OK" } else { "BLOCKED" },
            if mail_attempt.is_ok() {
                "OK"
            } else {
                "BLOCKED"
            },
            as_bytes(plan.level(&admin, pool).unwrap()),
        );
    }
    println!(
        "\nad app accumulated only {} bytes of quota — its 1 MB fetches never fit;",
        as_bytes(plan.level(&admin, ads).unwrap())
    );
    println!("the mail client's 200 KB syncs fit comfortably inside its 10 KB/s tap.");
}
