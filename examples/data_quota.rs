//! The paper's §9 future work as a first-class typed graph: reserves and
//! taps managing *network bytes* — "replacing the logical battery with a
//! pool of network bytes" to keep applications inside a data plan.
//!
//! Byte reserves are declared [`cinder::core::ResourceKind::NetworkBytes`],
//! the taps are kind-checked (a byte tap cannot touch a joule reserve), and
//! amounts move through the typed [`Quantity`]/[`Rate`] API — no unit puns.
//!
//! ```text
//! cargo run --example data_quota
//! ```

use cinder::core::{Actor, GraphConfig, Quantity, Rate, ResourceGraph, ResourceKind};
use cinder::label::Label;
use cinder::sim::{Energy, SimTime};

fn main() {
    // An (empty) energy battery plus a 5 MB data-plan pool: one graph, two
    // kinds, conservation tracked per kind.
    let mut g = ResourceGraph::with_config(
        Energy::ZERO,
        GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
    );
    let admin = Actor::kernel();
    let pool = g
        .create_root(&admin, "plan-pool", Quantity::network_bytes(5_000_000))
        .unwrap();

    // A chatty ad-supported app is limited to 2 KB/s; the mail client gets
    // a 10 KB/s tap.
    let ads = g
        .create_reserve_kind(
            &admin,
            "ad-app",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )
        .unwrap();
    let mail = g
        .create_reserve_kind(
            &admin,
            "mail",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )
        .unwrap();
    g.create_tap_typed(
        &admin,
        "ads@2KBps",
        pool,
        ads,
        Rate::bytes_per_sec(2_000),
        Label::default_label(),
    )
    .unwrap();
    g.create_tap_typed(
        &admin,
        "mail@10KBps",
        pool,
        mail,
        Rate::bytes_per_sec(10_000),
        Label::default_label(),
    )
    .unwrap();

    // Cross-kind plumbing is a typed error, not a silent unit pun.
    let err = g
        .create_tap_typed(
            &admin,
            "bytes-to-joules",
            pool,
            g.battery(),
            Rate::bytes_per_sec(1_000),
            Label::default_label(),
        )
        .unwrap_err();
    println!("wiring bytes into the battery is refused: {err}\n");

    println!("5 MB data plan; ad-app tapped at 2 KB/s, mail at 10 KB/s\n");
    for minute in 1..=5u64 {
        g.flow_until(SimTime::from_secs(minute * 60));
        // The ad app tries to pull 1 MB of ads; the mail client syncs 200 KB.
        let ad_attempt = g.consume_typed(&admin, ads, Quantity::network_bytes(1_000_000));
        let mail_attempt = g.consume_typed(&admin, mail, Quantity::network_bytes(200_000));
        println!(
            "minute {minute}: ad 1MB fetch: {:<8} mail 200KB sync: {:<8} plan left: {}",
            if ad_attempt.is_ok() { "OK" } else { "BLOCKED" },
            if mail_attempt.is_ok() {
                "OK"
            } else {
                "BLOCKED"
            },
            g.level_typed(&admin, pool).unwrap(),
        );
    }
    println!(
        "\nad app accumulated only {} of quota — its 1 MB fetches never fit;",
        g.level_typed(&admin, ads).unwrap()
    );
    println!("the mail client's 200 KB syncs fit comfortably inside its 10 KB/s tap.");
    assert!(g.totals_for(ResourceKind::NetworkBytes).conserved());
}
