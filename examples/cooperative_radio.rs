//! The cooperative network stack of paper §5.5 / §6.4 (Figs 13/14,
//! Table 1): two pollers pool energy in netd's reserve so the radio powers
//! up once for both, instead of twice staggered.
//!
//! ```text
//! cargo run --release --example cooperative_radio
//! ```

use cinder::apps::{PeriodicPoller, PollerLog};
use cinder::core::{Actor, RateSpec};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::net::{CoopNetd, UncoopStack};
use cinder::sim::{Power, SimDuration, SimTime};

struct Outcome {
    activations: u64,
    active_s: f64,
    total_j: f64,
    polls: usize,
}

fn run(cooperative: bool) -> Outcome {
    let mut kernel = Kernel::new(KernelConfig {
        meter_trace: true,
        ..KernelConfig::default()
    });
    if cooperative {
        let netd = CoopNetd::with_defaults(kernel.graph_mut());
        kernel.install_net(Box::new(netd));
    } else {
        kernel.install_net(Box::new(UncoopStack::new()));
    }
    let root = Actor::kernel();
    let battery = kernel.battery();
    let log = PollerLog::shared();
    for (name, program) in [
        ("rss", PeriodicPoller::rss(log.clone())),
        ("mail", PeriodicPoller::mail(log.clone())),
    ] {
        let r = kernel
            .graph_mut()
            .create_reserve(&root, name, Label::default_label())
            .unwrap();
        kernel
            .graph_mut()
            .create_tap(
                &root,
                &format!("{name}-tap"),
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(99_000)),
                Label::default_label(),
            )
            .unwrap();
        kernel.spawn_unprivileged(name, Box::new(program), r);
    }
    let end = SimTime::ZERO + SimDuration::from_secs(1201);
    kernel.run_until(end);
    let polls = log.borrow().sends.len();
    Outcome {
        activations: kernel.arm9().radio().stats().activations,
        active_s: kernel.arm9().radio().total_active(end).as_secs_f64(),
        total_j: kernel.meter().total_energy().as_joules_f64(),
        polls,
    }
}

fn main() {
    println!("RSS poller (every 60 s from t=0) + mail poller (every 60 s from t=15)");
    println!("20-minute run on the HTC Dream model\n");
    let uncoop = run(false);
    let coop = run(true);
    println!(
        "{:<16}{:>14}{:>14}{:>12}{:>10}",
        "", "activations", "active time", "energy", "polls"
    );
    for (name, o) in [("uncooperative", &uncoop), ("cooperative", &coop)] {
        println!(
            "{:<16}{:>14}{:>12.0} s{:>10.0} J{:>10}",
            name, o.activations, o.active_s, o.total_j, o.polls
        );
    }
    println!(
        "\ncooperation saves {:.1}% total energy and {:.1}% active radio time",
        (uncoop.total_j - coop.total_j) / uncoop.total_j * 100.0,
        (uncoop.active_s - coop.active_s) / uncoop.active_s * 100.0,
    );
    println!("(paper Table 1: 12.5% and 46.3%)");
}
