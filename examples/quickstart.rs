//! Quickstart: the paper's Figure 1 — a 15 kJ battery feeding a web browser
//! through a 750 mW tap, so the battery lasts at least 5 hours no matter
//! how aggressively the browser spends.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cinder::apps::Spinner;
use cinder::core::{Actor, RateSpec};
use cinder::kernel::{Kernel, KernelConfig};
use cinder::label::Label;
use cinder::sim::{Energy, Power, SimTime};

fn main() {
    let mut kernel = Kernel::new(KernelConfig {
        battery: Energy::from_joules(15_000),
        ..KernelConfig::default()
    });
    let root = Actor::kernel();
    let battery = kernel.battery();

    // Fig 1: battery → (750 mW tap) → browser reserve.
    let browser_reserve = kernel
        .graph_mut()
        .create_reserve(&root, "web browser", Label::default_label())
        .expect("create reserve");
    kernel
        .graph_mut()
        .create_tap(
            &root,
            "750mW",
            battery,
            browser_reserve,
            RateSpec::constant(Power::from_milliwatts(750)),
            Label::default_label(),
        )
        .expect("create tap");

    // The "browser" is an aggressive CPU hog; the tap is its leash.
    let browser = kernel.spawn_unprivileged("browser", Box::new(Spinner::new()), browser_reserve);

    println!("battery: 15 kJ, browser tap: 750 mW");
    println!("paper's claim: the battery lasts at least 15000 J / 0.75 W ≈ 5.6 h\n");
    println!(
        "{:>8} {:>14} {:>12} {:>16}",
        "t", "browser est.", "battery", "browser spent"
    );
    for minutes in [1u64, 5, 15, 30, 60] {
        kernel.run_until(SimTime::from_secs(minutes * 60));
        let est = kernel.thread_power_estimate(browser);
        let level = kernel.graph().reserve(battery).unwrap().balance();
        let spent = kernel.thread_consumed(browser);
        println!(
            "{:>6}min {:>14} {:>12} {:>16}",
            minutes,
            format!("{est}"),
            format!("{:.0} J", level.as_joules_f64()),
            format!("{:.1} J", spent.as_joules_f64()),
        );
    }

    // Extrapolate lifetime: drain over the hour ran.
    let drained = Energy::from_joules(15_000) - kernel.graph().reserve(battery).unwrap().balance();
    let rate = drained.as_joules_f64() / 3600.0;
    println!(
        "\ndrain rate {:.3} W → projected battery life {:.1} h (≥ 5 h as promised)",
        rate,
        15_000.0 / rate / 3600.0
    );
}
